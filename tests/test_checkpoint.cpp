// Checkpoint/resume and adaptive-pacer tests.
//
// The load-bearing guarantee: a campaign killed at any checkpoint boundary
// and resumed in a fresh process produces the SAME ScanResults, bit for
// bit, as one that never stopped — at any thread count, in either scan.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "scan/campaign.hpp"
#include "scan/checkpoint.hpp"
#include "scan/pacer.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::scan {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void expect_same_scan(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  EXPECT_EQ(a.undecodable_responses, b.undecodable_responses);
  EXPECT_EQ(a.pacer_backoffs, b.pacer_backoffs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target) << "record " << i;
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.response_bytes, rb.response_bytes);
    EXPECT_EQ(ra.extra_engines, rb.extra_engines);
  }
}

// ---- RNG state ------------------------------------------------------------

TEST(RngState, SaveRestoreReproducesStreamIncludingNormalSpare) {
  util::Rng rng(12345);
  rng.next();
  rng.normal();  // leaves a spare Box-Muller value buffered
  const auto saved = rng.save_state();

  std::vector<std::uint64_t> first;
  std::vector<double> normals1;
  for (int i = 0; i < 8; ++i) first.push_back(rng.next());
  for (int i = 0; i < 5; ++i) normals1.push_back(rng.normal());

  util::Rng other(999);  // entirely different starting stream
  other.restore_state(saved);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(other.next(), first[i]);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(other.normal(), normals1[i]);
}

// ---- pacer ----------------------------------------------------------------

TEST(Pacer, FixedModeMatchesHistoricalGapAndDrawsNoRng) {
  util::Rng rng(7);
  const auto fresh_state = rng.save_state();
  AdaptivePacer pacer(5000.0, {}, rng);  // adaptive defaults to off

  const auto gap = static_cast<util::VTime>(
      static_cast<double>(util::kSecond) / 5000.0);
  util::VTime t = 1000;
  for (int i = 0; i < 1000; ++i) {
    pacer.on_probe_sent();
    const auto next = pacer.schedule_after(t);
    EXPECT_EQ(next, t + gap);
    t = next;
    pacer.on_responses(1);
  }
  EXPECT_EQ(pacer.state().backoffs, 0u);
  // Fixed-gap mode never touches the shard RNG stream.
  EXPECT_TRUE(rng.save_state() == fresh_state);
}

TEST(Pacer, BacksOffOnCollapseAndRecovers) {
  util::Rng rng(7);
  PacerConfig config;
  config.adaptive = true;
  config.window_probes = 4;
  config.min_rate_pps = 100.0;
  config.max_backoff_jitter = 0;  // keep the schedule arithmetic exact
  AdaptivePacer pacer(1000.0, config, rng);

  // Drives exactly one full window with `responses` total responses; the
  // closing schedule_after evaluates it.
  util::VTime t = 0;
  const auto run_window = [&](std::size_t responses) {
    for (std::size_t i = 0; i < config.window_probes; ++i)
      pacer.on_probe_sent();
    pacer.on_responses(responses);
    t = pacer.schedule_after(t);
  };

  // Window 1: full responses — learns baseline 1.0, no rate change.
  run_window(4);
  EXPECT_EQ(pacer.state().rate_pps, 1000.0);
  EXPECT_EQ(pacer.state().backoffs, 0u);
  EXPECT_EQ(pacer.state().baseline_response_rate, 1.0);

  // Window of silence: response rate 0 < 0.5 * baseline — backoff.
  run_window(0);
  EXPECT_EQ(pacer.state().backoffs, 1u);
  EXPECT_EQ(pacer.state().rate_pps, 500.0);

  // Healthy windows: multiplicative recovery, capped at the target.
  for (int i = 0; i < 10; ++i) run_window(4);
  EXPECT_EQ(pacer.state().rate_pps, 1000.0);
  EXPECT_EQ(pacer.state().backoffs, 1u);
}

TEST(Pacer, BackoffNeverDropsBelowFloor) {
  util::Rng rng(7);
  PacerConfig config;
  config.adaptive = true;
  config.window_probes = 2;
  config.min_rate_pps = 200.0;
  config.max_backoff_jitter = 0;
  AdaptivePacer pacer(1000.0, config, rng);

  util::VTime t = 0;
  const auto run_window = [&](std::size_t responses) {
    for (std::size_t i = 0; i < config.window_probes; ++i)
      pacer.on_probe_sent();
    pacer.on_responses(responses);
    t = pacer.schedule_after(t);
  };
  run_window(2);                               // learn baseline
  for (int i = 0; i < 20; ++i) run_window(0);  // sustained silence
  EXPECT_GE(pacer.state().rate_pps, 200.0);
  EXPECT_GT(pacer.state().backoffs, 1u);
}

TEST(Pacer, RateLimitSignalForcesBackoffBeforeBaseline) {
  util::Rng rng(7);
  PacerConfig config;
  config.adaptive = true;
  config.window_probes = 4;
  config.max_backoff_jitter = 0;
  AdaptivePacer pacer(1000.0, config, rng);

  // First window: responses look perfectly healthy, but the transport saw
  // an explicit rate-limit signal (the ICMP admin-prohibited analogue) —
  // backoff fires immediately, before any response-rate baseline exists.
  // Rate inference alone could never back off here.
  for (int i = 0; i < 4; ++i) pacer.on_probe_sent();
  pacer.on_responses(4);
  pacer.on_rate_limit_signals(1);
  (void)pacer.schedule_after(0);
  EXPECT_EQ(pacer.state().backoffs, 1u);
  EXPECT_EQ(pacer.state().rate_pps, 500.0);
  EXPECT_EQ(pacer.state().rate_limit_signals, 1u);
  EXPECT_EQ(pacer.state().window_rate_limit_signals, 0u);  // window closed
}

TEST(Pacer, RateLimitSignalsDisabledKeepRateInferenceOnly) {
  util::Rng rng(7);
  PacerConfig config;
  config.adaptive = true;
  config.window_probes = 4;
  config.max_backoff_jitter = 0;
  config.use_rate_limit_signals = false;
  AdaptivePacer pacer(1000.0, config, rng);

  for (int i = 0; i < 4; ++i) pacer.on_probe_sent();
  pacer.on_responses(4);
  pacer.on_rate_limit_signals(3);
  (void)pacer.schedule_after(0);
  // Signals are still accounted but never force a decision.
  EXPECT_EQ(pacer.state().backoffs, 0u);
  EXPECT_EQ(pacer.state().rate_pps, 1000.0);
  EXPECT_EQ(pacer.state().rate_limit_signals, 3u);
}

TEST(Pacer, SignalFedCampaignIsDeterministicAndBacksOff) {
  // A rate-limiting world with the adaptive pacer: the fabric's explicit
  // signals feed the pacer through the prober, so backoffs must fire, and
  // the whole campaign must stay bit-identical across thread counts.
  const auto run = [](std::size_t threads) {
    CampaignOptions options;
    options.seed = 55;
    options.shards = 2;
    options.rate_pps = 20000.0;
    options.fabric.device_rate_limit_pps = 1;
    options.pacer.adaptive = true;
    options.pacer.window_probes = 32;
    options.parallel.threads = threads;
    auto world = topo::generate_world(topo::WorldConfig::tiny());
    return run_two_scan_campaign(world, options);
  };
  const auto a = run(1);
  const auto b = run(8);
  EXPECT_GT(a.scan1.pacer_backoffs + a.scan2.pacer_backoffs, 0u);
  EXPECT_GT(a.fabric_stats.probes_rate_limited, 0u);
  expect_same_scan(a.scan1, b.scan1);
  expect_same_scan(a.scan2, b.scan2);
  EXPECT_TRUE(a.fabric_stats == b.fabric_stats);
}

TEST(Pacer, StateRoundTripContinuesIdentically) {
  util::Rng rng_a(3), rng_b(3);
  PacerConfig config;
  config.adaptive = true;
  config.window_probes = 3;
  AdaptivePacer a(800.0, config, rng_a);
  AdaptivePacer b(800.0, config, rng_b);

  util::VTime ta = 0;
  for (int i = 0; i < 10; ++i) {
    a.on_probe_sent();
    ta = a.schedule_after(ta);
    a.on_responses(i % 3 == 0 ? 1 : 0);
  }
  b.restore(a.state());
  rng_b.restore_state(rng_a.save_state());

  util::VTime tb = ta;
  for (int i = 0; i < 10; ++i) {
    a.on_probe_sent();
    b.on_probe_sent();
    ta = a.schedule_after(ta);
    tb = b.schedule_after(tb);
    EXPECT_EQ(ta, tb);
    a.on_responses(1);
    b.on_responses(1);
  }
}

// ---- checkpoint codec -----------------------------------------------------

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint checkpoint;
  checkpoint.config_digest = 0xdeadbeefcafef00dULL;
  checkpoint.scan_index = 2;

  ScanResult scan1;
  scan1.label = "scan1";
  scan1.start_time = 10 * util::kSecond;
  scan1.end_time = 20 * util::kSecond;
  scan1.targets_probed = 3;
  scan1.probe_bytes = 60;
  scan1.undecodable_responses = 2;
  scan1.pacer_backoffs = 1;
  ScanRecord record;
  record.target = net::IpAddress(net::Ipv4(203, 0, 113, 9));
  record.engine_id = snmp::EngineId(util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x04});
  record.engine_boots = 7;
  record.engine_time = 424242;
  record.send_time = 11 * util::kSecond;
  record.receive_time = 11 * util::kSecond + 31 * util::kMillisecond;
  record.response_count = 3;
  record.response_bytes = 107;
  record.extra_engines.push_back(
      snmp::EngineId(util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x05}));
  scan1.records.push_back(record);
  checkpoint.scan1 = scan1;

  ShardScanState shard;
  shard.shard = 1;
  shard.cursor = 17;
  shard.complete = false;
  shard.next_send = 123456789;
  util::Rng rng(55);
  rng.next();
  rng.normal();
  shard.rng = rng.save_state();
  shard.pacer.rate_pps = 2500.125;
  shard.pacer.baseline_response_rate = 0.1 + 0.2;  // not exactly 0.3
  shard.pacer.window_sent = 12;
  shard.pacer.window_responses = 4;
  shard.pacer.backoffs = 2;
  shard.pacer.backoff_wait = 77 * util::kMillisecond;
  shard.partial = scan1;
  shard.partial.label = "scan2";
  shard.sent_at.emplace_back(net::IpAddress(net::Ipv4(203, 0, 113, 10)),
                             12 * util::kSecond);

  shard.fabric.clock = 42 * util::kSecond;
  shard.fabric.rng = rng.save_state();
  shard.fabric.stats.datagrams_sent = 100;
  shard.fabric.stats.probes_lost = 3;
  shard.fabric.stats.responses_corrupted = 1;
  net::Datagram in_flight;
  in_flight.source = {net::IpAddress(net::Ipv4(203, 0, 113, 9)), 161};
  in_flight.destination = {net::IpAddress(net::Ipv4(198, 51, 100, 7)), 54321};
  in_flight.payload = util::Bytes{0x30, 0x82, 0x00, 0x01, 0xff};
  in_flight.time = 42 * util::kSecond + 5 * util::kMillisecond;
  shard.fabric.in_flight.push_back(in_flight);
  shard.fabric.inbox.push_back(in_flight);
  shard.fabric.rate_windows.push_back({9, 41 * util::kSecond, 4});
  checkpoint.shard_states.push_back(shard);
  checkpoint.scan_boundary_fabrics.push_back(shard.fabric);
  return checkpoint;
}

void expect_same_fabric_state(const sim::FabricState& a,
                              const sim::FabricState& b) {
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_TRUE(a.rng == b.rng);
  EXPECT_TRUE(a.stats == b.stats);
  ASSERT_EQ(a.in_flight.size(), b.in_flight.size());
  for (std::size_t i = 0; i < a.in_flight.size(); ++i) {
    EXPECT_EQ(a.in_flight[i].source.address, b.in_flight[i].source.address);
    EXPECT_EQ(a.in_flight[i].source.port, b.in_flight[i].source.port);
    EXPECT_EQ(a.in_flight[i].destination.address,
              b.in_flight[i].destination.address);
    EXPECT_EQ(a.in_flight[i].payload, b.in_flight[i].payload);
    EXPECT_EQ(a.in_flight[i].time, b.in_flight[i].time);
  }
  ASSERT_EQ(a.inbox.size(), b.inbox.size());
  ASSERT_EQ(a.rate_windows.size(), b.rate_windows.size());
  for (std::size_t i = 0; i < a.rate_windows.size(); ++i) {
    EXPECT_EQ(a.rate_windows[i].device, b.rate_windows[i].device);
    EXPECT_EQ(a.rate_windows[i].window_start, b.rate_windows[i].window_start);
    EXPECT_EQ(a.rate_windows[i].count, b.rate_windows[i].count);
  }
}

TEST(CheckpointCodec, JsonRoundTripIsExact) {
  const auto original = sample_checkpoint();
  const auto parsed = CampaignCheckpoint::from_json(original.to_json());
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->config_digest, original.config_digest);
  EXPECT_EQ(parsed->scan_index, original.scan_index);
  ASSERT_TRUE(parsed->scan1.has_value());
  expect_same_scan(*parsed->scan1, *original.scan1);

  ASSERT_EQ(parsed->shard_states.size(), 1u);
  const auto& a = parsed->shard_states[0];
  const auto& b = original.shard_states[0];
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.cursor, b.cursor);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.next_send, b.next_send);
  EXPECT_TRUE(a.rng == b.rng);
  // Doubles travel as IEEE bit patterns: EXACT equality, not approximate.
  EXPECT_EQ(a.pacer.rate_pps, b.pacer.rate_pps);
  EXPECT_EQ(a.pacer.baseline_response_rate, b.pacer.baseline_response_rate);
  EXPECT_EQ(a.pacer.window_sent, b.pacer.window_sent);
  EXPECT_EQ(a.pacer.window_responses, b.pacer.window_responses);
  EXPECT_EQ(a.pacer.backoffs, b.pacer.backoffs);
  EXPECT_EQ(a.pacer.backoff_wait, b.pacer.backoff_wait);
  expect_same_scan(a.partial, b.partial);
  EXPECT_EQ(a.sent_at, b.sent_at);
  expect_same_fabric_state(a.fabric, b.fabric);
  ASSERT_EQ(parsed->scan_boundary_fabrics.size(), 1u);
  expect_same_fabric_state(parsed->scan_boundary_fabrics[0],
                           original.scan_boundary_fabrics[0]);
}

TEST(CheckpointCodec, SaveLoadRemoveLifecycle) {
  const auto path = temp_path("ckpt_lifecycle.json");
  const auto checkpoint = sample_checkpoint();
  ASSERT_TRUE(save_checkpoint(checkpoint, path));
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config_digest, checkpoint.config_digest);
  remove_checkpoint(path);
  EXPECT_FALSE(load_checkpoint(path).has_value());
}

TEST(CheckpointCodec, GarbageFileIsRejected) {
  const auto path = temp_path("ckpt_garbage.json");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"schema\": \"not a checkpoint\"", file);
  std::fclose(file);
  EXPECT_FALSE(load_checkpoint(path).has_value());
  remove_checkpoint(path);
}

// ---- kill + resume --------------------------------------------------------

class CheckpointCampaignTest : public ::testing::Test {
 protected:
  static CampaignOptions base_options() {
    CampaignOptions options;
    options.seed = 77;
    options.shards = 4;
    options.fabric.probe_loss = 0.02;
    options.fabric.response_loss = 0.02;
    return options;
  }

  static topo::World fresh_world() {
    return topo::generate_world(topo::WorldConfig::tiny());
  }
};

TEST_F(CheckpointCampaignTest, KillAtBoundaryThenResumeBitIdentical) {
  topo::World reference_world = fresh_world();
  const auto reference =
      run_two_scan_campaign(reference_world, base_options());
  ASSERT_FALSE(reference.interrupted);
  ASSERT_GT(reference.scan1.responsive(), 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto path =
        temp_path("ckpt_resume_t" + std::to_string(threads) + ".json");
    remove_checkpoint(path);

    // Phase 1: simulated kill after each shard's first checkpoint.
    CampaignOptions killed_options = base_options();
    killed_options.parallel.threads = threads;
    killed_options.checkpoint_path = path;
    killed_options.checkpoint_every_n_targets = 16;
    killed_options.abort_after_checkpoints = 1;
    topo::World killed_world = fresh_world();
    const auto killed = run_two_scan_campaign(killed_world, killed_options);
    EXPECT_TRUE(killed.interrupted) << threads << " threads";
    ASSERT_TRUE(load_checkpoint(path).has_value());

    // Phase 2: a fresh process (fresh pre-churn world) resumes the file.
    CampaignOptions resume_options = killed_options;
    resume_options.abort_after_checkpoints = 0;
    topo::World resume_world = fresh_world();
    const auto resumed = run_two_scan_campaign(resume_world, resume_options);
    EXPECT_FALSE(resumed.interrupted);

    expect_same_scan(reference.scan1, resumed.scan1);
    expect_same_scan(reference.scan2, resumed.scan2);
    // Completion removes the file.
    EXPECT_FALSE(load_checkpoint(path).has_value());
  }
}

TEST_F(CheckpointCampaignTest, KillInsideScanTwoResumesBitIdentical) {
  topo::World reference_world = fresh_world();
  auto options = base_options();
  options.shards = 2;
  const auto reference = run_two_scan_campaign(reference_world, options);

  // Place the kill inside scan 2: each shard crosses its slice/every
  // boundaries per scan, so max_boundaries+1 can only be reached there.
  const std::size_t every = 8;
  const std::size_t n = reference.scan1.targets_probed;
  const std::size_t base = n / options.shards;
  const std::size_t max_boundaries = (base + 1) / every;
  ASSERT_GE(max_boundaries, 1u) << "tiny world too small for this test";

  const auto path = temp_path("ckpt_scan2_kill.json");
  remove_checkpoint(path);
  CampaignOptions killed_options = options;
  killed_options.parallel.threads = 2;
  killed_options.checkpoint_path = path;
  killed_options.checkpoint_every_n_targets = every;
  killed_options.abort_after_checkpoints = max_boundaries + 1;
  topo::World killed_world = fresh_world();
  const auto killed = run_two_scan_campaign(killed_world, killed_options);
  EXPECT_TRUE(killed.interrupted);

  const auto file = load_checkpoint(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->scan_index, 2u);  // the kill landed in scan 2
  ASSERT_TRUE(file->scan1.has_value());
  expect_same_scan(reference.scan1, *file->scan1);

  CampaignOptions resume_options = killed_options;
  resume_options.abort_after_checkpoints = 0;
  topo::World resume_world = fresh_world();
  const auto resumed = run_two_scan_campaign(resume_world, resume_options);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_scan(reference.scan1, resumed.scan1);
  expect_same_scan(reference.scan2, resumed.scan2);
  EXPECT_FALSE(load_checkpoint(path).has_value());
}

TEST_F(CheckpointCampaignTest, ScanBoundaryOnlyCheckpointStillResumes) {
  topo::World reference_world = fresh_world();
  const auto reference =
      run_two_scan_campaign(reference_world, base_options());

  // checkpoint_every = 0: the only checkpoint is the scan-1/scan-2
  // boundary. Simulate the kill by just planting that file's state: run
  // with checkpointing on, no abort, then verify the boundary file from a
  // mid-campaign write resumes — here the proxy is that a full
  // checkpointed run equals the reference and cleans up after itself.
  const auto path = temp_path("ckpt_boundary_only.json");
  remove_checkpoint(path);
  CampaignOptions options = base_options();
  options.checkpoint_path = path;
  options.checkpoint_every_n_targets = 0;
  topo::World world = fresh_world();
  const auto checkpointed = run_two_scan_campaign(world, options);
  EXPECT_FALSE(checkpointed.interrupted);
  expect_same_scan(reference.scan1, checkpointed.scan1);
  expect_same_scan(reference.scan2, checkpointed.scan2);
  EXPECT_FALSE(load_checkpoint(path).has_value());
}

TEST_F(CheckpointCampaignTest, MismatchedConfigCheckpointIsIgnored) {
  const auto path = temp_path("ckpt_mismatch.json");
  remove_checkpoint(path);

  // Leave a checkpoint behind with seed 77.
  CampaignOptions killed_options = base_options();
  killed_options.checkpoint_path = path;
  killed_options.checkpoint_every_n_targets = 16;
  killed_options.abort_after_checkpoints = 1;
  topo::World killed_world = fresh_world();
  const auto killed = run_two_scan_campaign(killed_world, killed_options);
  ASSERT_TRUE(killed.interrupted);
  ASSERT_TRUE(load_checkpoint(path).has_value());

  // A different experiment (seed 78) must ignore it and run fresh.
  CampaignOptions other_options = base_options();
  other_options.seed = 78;
  topo::World reference_world = fresh_world();
  const auto reference = run_two_scan_campaign(reference_world, other_options);

  other_options.checkpoint_path = path;
  topo::World world = fresh_world();
  const auto result = run_two_scan_campaign(world, other_options);
  EXPECT_FALSE(result.interrupted);
  expect_same_scan(reference.scan1, result.scan1);
  expect_same_scan(reference.scan2, result.scan2);
  EXPECT_FALSE(load_checkpoint(path).has_value());
}

// ---- full pipeline --------------------------------------------------------

TEST(CheckpointPipeline, InterruptedPipelineResumesToIdenticalResult) {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  options.scan_shards = 4;
  const auto reference = core::run_full_pipeline(options);
  ASSERT_FALSE(reference.interrupted);

  core::PipelineOptions killed_options = options;
  killed_options.checkpoint_dir = ::testing::TempDir();
  killed_options.checkpoint_every_n_targets = 16;
  killed_options.abort_after_checkpoints = 1;
  remove_checkpoint(killed_options.checkpoint_dir + "/campaign_v4.json");
  remove_checkpoint(killed_options.checkpoint_dir + "/campaign_v6.json");
  const auto killed = core::run_full_pipeline(killed_options);
  EXPECT_TRUE(killed.interrupted);

  core::PipelineOptions resume_options = killed_options;
  resume_options.abort_after_checkpoints = 0;
  const auto resumed = core::run_full_pipeline(resume_options);
  EXPECT_FALSE(resumed.interrupted);

  expect_same_scan(reference.v4_campaign.scan1, resumed.v4_campaign.scan1);
  expect_same_scan(reference.v4_campaign.scan2, resumed.v4_campaign.scan2);
  expect_same_scan(reference.v6_campaign.scan1, resumed.v6_campaign.scan1);
  expect_same_scan(reference.v6_campaign.scan2, resumed.v6_campaign.scan2);
  ASSERT_EQ(reference.devices.size(), resumed.devices.size());
  for (std::size_t i = 0; i < reference.devices.size(); ++i) {
    EXPECT_EQ(reference.devices[i].set->addresses,
              resumed.devices[i].set->addresses);
    EXPECT_EQ(reference.devices[i].fingerprint.vendor,
              resumed.devices[i].fingerprint.vendor);
  }
  // Both campaign files are gone after the completed resume.
  EXPECT_FALSE(
      load_checkpoint(killed_options.checkpoint_dir + "/campaign_v4.json")
          .has_value());
  EXPECT_FALSE(
      load_checkpoint(killed_options.checkpoint_dir + "/campaign_v6.json")
          .has_value());
}

}  // namespace
}  // namespace snmpv3fp::scan
