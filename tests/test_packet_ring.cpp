// AF_PACKET ring receive tests (net/packet_ring.hpp).
//
// Five layers, lowest first:
//  1. The link-layer parser over a hostile corpus — pure function, always
//     runs: good Ethernet/VLAN/QinQ/SLL/IPv6+extension frames parse to the
//     exact payload bytes; every truncation, fragment, unknown protocol
//     and bad-length shape fails closed.
//  2. The receive errno taxonomy and its EINTR contract: an interrupting
//     timer signal retries the wait instead of surfacing as an error —
//     on a blocking UdpSocket::receive and through a full engine drain.
//  3. PacketRingReceiver over loopback (needs CAP_NET_RAW, visible skip
//     otherwise): the ring yields a byte-identical payload set to what
//     the UDP socket itself reads.
//  4. PACKET_FANOUT_HASH steering: every flow lands on exactly one of the
//     group's rings.
//  5. The tentpole contract: the full pipeline probing through ring
//     receive is bit-identical to the sim-fabric run at 1/2/8 threads.

#include <gtest/gtest.h>

#include <sys/time.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "net/batched_udp.hpp"
#include "net/packet_ring.hpp"
#include "net/udp_socket.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

using Bytes = std::vector<std::uint8_t>;

// ---------------------------------------------------------------------------
// Frame builders for the parser corpus
// ---------------------------------------------------------------------------

void put16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
}

Bytes eth_header(std::uint16_t ethertype) {
  Bytes b(12, 0x02);  // dst/src MACs — the parser never reads them
  put16(b, ethertype);
  return b;
}

Bytes sll_header(std::uint16_t ethertype) {
  Bytes b(14, 0x00);  // pkttype/hatype/halen/addr — unread
  put16(b, ethertype);
  return b;
}

Bytes udp_header(std::uint16_t sport, std::uint16_t dport,
                 std::size_t payload_len, int len_override = -1) {
  Bytes b;
  put16(b, sport);
  put16(b, dport);
  put16(b, len_override >= 0 ? static_cast<std::uint16_t>(len_override)
                             : static_cast<std::uint16_t>(8 + payload_len));
  put16(b, 0);  // checksum: unvalidated (loopback offloads it anyway)
  return b;
}

struct V4Opts {
  std::uint8_t proto = 17;
  std::uint16_t frag = 0;       // flags+offset field, host order
  std::uint8_t ihl_words = 5;
  int total_len_override = -1;  // -1: computed
  int udp_len_override = -1;
};

Bytes ipv4_udp(const Bytes& payload, std::uint16_t sport, std::uint16_t dport,
               const V4Opts& o = {}) {
  const std::size_t ihl = o.ihl_words * std::size_t{4};
  Bytes b;
  b.push_back(static_cast<std::uint8_t>(0x40 | o.ihl_words));
  b.push_back(0);  // TOS
  put16(b, o.total_len_override >= 0
               ? static_cast<std::uint16_t>(o.total_len_override)
               : static_cast<std::uint16_t>(ihl + 8 + payload.size()));
  put16(b, 0x1234);  // id
  put16(b, o.frag);
  b.push_back(64);       // TTL
  b.push_back(o.proto);  // protocol
  put16(b, 0);           // header checksum: unvalidated
  for (std::uint8_t octet : {10, 1, 2, 3}) b.push_back(octet);  // src
  for (std::uint8_t octet : {10, 9, 8, 7}) b.push_back(octet);  // dst
  b.resize(ihl, 0);  // options padding when ihl_words > 5
  const Bytes udp = udp_header(sport, dport, payload.size(),
                               o.udp_len_override);
  b.insert(b.end(), udp.begin(), udp.end());
  b.insert(b.end(), payload.begin(), payload.end());
  return b;
}

struct V6Opts {
  std::uint8_t first_next = 17;  // next-header of the fixed header
  Bytes ext;                     // pre-built extension chain
  int payload_len_override = -1;
  int udp_len_override = -1;
};

Bytes ipv6_udp(const Bytes& payload, std::uint16_t sport, std::uint16_t dport,
               const V6Opts& o = {}) {
  Bytes b;
  b.push_back(0x60);
  b.push_back(0);
  put16(b, 0);  // flow label low bits
  put16(b, o.payload_len_override >= 0
               ? static_cast<std::uint16_t>(o.payload_len_override)
               : static_cast<std::uint16_t>(o.ext.size() + 8 +
                                            payload.size()));
  b.push_back(o.first_next);
  b.push_back(64);  // hop limit
  for (int i = 0; i < 16; ++i)
    b.push_back(static_cast<std::uint8_t>(0x20 + i));  // src
  for (int i = 0; i < 16; ++i)
    b.push_back(static_cast<std::uint8_t>(0x30 + i));  // dst
  b.insert(b.end(), o.ext.begin(), o.ext.end());
  const Bytes udp = udp_header(sport, dport, payload.size(),
                               o.udp_len_override);
  b.insert(b.end(), udp.begin(), udp.end());
  b.insert(b.end(), payload.begin(), payload.end());
  return b;
}

// Generic 8-byte-unit extension header (hop-by-hop / routing / dest-opts).
Bytes ext_generic(std::uint8_t next, std::uint8_t len_units = 0) {
  Bytes b((std::size_t{len_units} + 1) * 8, 0);
  b[0] = next;
  b[1] = len_units;
  return b;
}

Bytes ext_fragment(std::uint8_t next, std::uint16_t frag_field) {
  Bytes b{next, 0};
  put16(b, frag_field);
  put16(b, 0);  // identification
  put16(b, 0);
  return b;
}

Bytes vlan_tag(std::uint16_t inner_ethertype) {
  Bytes b;
  put16(b, 0x0042);  // PCP/DEI/VID — unread
  put16(b, inner_ethertype);
  return b;
}

Bytes cat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

util::ByteView view(const Bytes& b) { return {b.data(), b.size()}; }

Bytes probe_payload() { return Bytes{0xde, 0xad, 0xbe, 0xef, 0x01}; }

// ---------------------------------------------------------------------------
// Parser corpus: well-formed frames
// ---------------------------------------------------------------------------

TEST(LinkParser, PlainEthernetIpv4UdpYieldsTheExactPayload) {
  const Bytes payload = probe_payload();
  const Bytes frame =
      cat({eth_header(0x0800), ipv4_udp(payload, 40001, 161)});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(frame), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  EXPECT_EQ(out.source.port, 40001);
  EXPECT_EQ(out.dst_port, 161);
  EXPECT_EQ(out.source.address, net::IpAddress(net::Ipv4(10, 1, 2, 3)));
  EXPECT_FALSE(out.truncated);
}

TEST(LinkParser, Ipv4OptionsShiftTheUdpHeader) {
  const Bytes payload = probe_payload();
  V4Opts opts;
  opts.ihl_words = 7;  // 8 bytes of options
  const Bytes frame =
      cat({eth_header(0x0800), ipv4_udp(payload, 40002, 162, opts)});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(frame), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  EXPECT_EQ(out.dst_port, 162);
}

TEST(LinkParser, SingleAndDoubleVlanTagsAreSkipped) {
  const Bytes payload = probe_payload();
  const Bytes inner = ipv4_udp(payload, 40003, 161);
  const Bytes single =
      cat({eth_header(0x8100), vlan_tag(0x0800), inner});
  const Bytes qinq = cat({eth_header(0x88A8), vlan_tag(0x8100),
                          vlan_tag(0x0800), inner});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(single), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  ASSERT_TRUE(net::parse_link_frame(view(qinq), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  // A third stacked tag exceeds the bounded tag walk: fail closed.
  const Bytes triple = cat({eth_header(0x88A8), vlan_tag(0x8100),
                            vlan_tag(0x8100), vlan_tag(0x0800), inner});
  EXPECT_FALSE(net::parse_link_frame(view(triple), net::LinkType::kEthernet,
                                     out));
}

TEST(LinkParser, CookedSllCarriesTheSamePacket) {
  const Bytes payload = probe_payload();
  const Bytes frame =
      cat({sll_header(0x0800), ipv4_udp(payload, 40004, 161)});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(frame), net::LinkType::kCookedSll,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  EXPECT_EQ(out.source.port, 40004);
}

TEST(LinkParser, Ipv6PlainAndWithExtensionChain) {
  const Bytes payload = probe_payload();
  const Bytes plain =
      cat({eth_header(0x86DD), ipv6_udp(payload, 40005, 161)});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(plain), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  EXPECT_EQ(out.source.address,
            net::IpAddress(net::Ipv6::from_groups(
                {0x2021, 0x2223, 0x2425, 0x2627, 0x2829, 0x2a2b, 0x2c2d,
                 0x2e2f})));

  // hop-by-hop -> dest-opts -> atomic fragment -> UDP.
  V6Opts opts;
  opts.first_next = 0;  // hop-by-hop
  opts.ext = cat({ext_generic(/*next=*/60, /*len_units=*/1),
                  ext_generic(/*next=*/44), ext_fragment(/*next=*/17, 0)});
  const Bytes chained =
      cat({eth_header(0x86DD), ipv6_udp(payload, 40006, 161, opts)});
  ASSERT_TRUE(net::parse_link_frame(view(chained), net::LinkType::kEthernet,
                                    out));
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()), payload);
  EXPECT_EQ(out.source.port, 40006);
}

TEST(LinkParser, CaptureClippedPayloadDeliversTruncated) {
  Bytes payload(64, 0x7c);
  Bytes frame = cat({eth_header(0x0800), ipv4_udp(payload, 40007, 161)});
  frame.resize(frame.size() - 32);  // snaplen clipped half the payload
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(frame), net::LinkType::kEthernet,
                                    out));
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.payload.size(), 32u);
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()),
            Bytes(32, 0x7c));
}

TEST(LinkParser, PayloadClampsToTheDeclaredUdpLength) {
  // UDP says 8 + 3 but the frame carries 5 payload bytes (e.g. Ethernet
  // minimum-size padding): only the declared 3 are delivered, untruncated.
  const Bytes payload = probe_payload();
  V4Opts opts;
  opts.udp_len_override = 8 + 3;
  const Bytes frame =
      cat({eth_header(0x0800), ipv4_udp(payload, 40008, 161, opts)});
  net::RingFrame out;
  ASSERT_TRUE(net::parse_link_frame(view(frame), net::LinkType::kEthernet,
                                    out));
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(Bytes(out.payload.begin(), out.payload.end()),
            Bytes(payload.begin(), payload.begin() + 3));
}

// ---------------------------------------------------------------------------
// Parser corpus: hostile frames fail closed
// ---------------------------------------------------------------------------

TEST(LinkParser, TruncationAtEveryLayerIsRejected) {
  const Bytes payload = probe_payload();
  const Bytes good =
      cat({eth_header(0x0800), ipv4_udp(payload, 40009, 161)});
  net::RingFrame out;
  // Chopping anywhere inside the link/IP/UDP headers must reject; inside
  // the payload it truncates but still parses. Headers end at 14+20+8.
  for (std::size_t len = 0; len < 14 + 20 + 8; ++len) {
    SCOPED_TRACE("len=" + std::to_string(len));
    EXPECT_FALSE(net::parse_link_frame({good.data(), len},
                                       net::LinkType::kEthernet, out));
  }
  for (std::size_t len = 14 + 20 + 8; len <= good.size(); ++len) {
    SCOPED_TRACE("len=" + std::to_string(len));
    EXPECT_TRUE(net::parse_link_frame({good.data(), len},
                                      net::LinkType::kEthernet, out));
  }
  // Short SLL header.
  const Bytes sll = cat({sll_header(0x0800), ipv4_udp(payload, 1, 2)});
  EXPECT_FALSE(net::parse_link_frame({sll.data(), 15},
                                     net::LinkType::kCookedSll, out));
}

TEST(LinkParser, NonUdpAndUnknownEthertypesAreRejected) {
  const Bytes payload = probe_payload();
  net::RingFrame out;
  V4Opts tcp;
  tcp.proto = 6;
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0800), ipv4_udp(payload, 1, 2, tcp)})),
      net::LinkType::kEthernet, out));
  // ARP ethertype.
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0806), ipv4_udp(payload, 1, 2)})),
      net::LinkType::kEthernet, out));
  // IP version nibble that matches neither family.
  Bytes bad_version = cat({eth_header(0x0800), ipv4_udp(payload, 1, 2)});
  bad_version[14] = 0x55;
  EXPECT_FALSE(net::parse_link_frame(view(bad_version),
                                     net::LinkType::kEthernet, out));
}

TEST(LinkParser, FragmentedDatagramsAreRejected) {
  const Bytes payload = probe_payload();
  net::RingFrame out;
  V4Opts more_fragments;
  more_fragments.frag = 0x2000;  // MF set, offset 0
  V4Opts offset;
  offset.frag = 0x0010;  // later fragment
  V4Opts dont_fragment;
  dont_fragment.frag = 0x4000;  // DF alone is not fragmentation
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0800),
                ipv4_udp(payload, 1, 2, more_fragments)})),
      net::LinkType::kEthernet, out));
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0800), ipv4_udp(payload, 1, 2, offset)})),
      net::LinkType::kEthernet, out));
  EXPECT_TRUE(net::parse_link_frame(
      view(cat({eth_header(0x0800),
                ipv4_udp(payload, 1, 2, dont_fragment)})),
      net::LinkType::kEthernet, out));

  // IPv6 fragment with nonzero offset or MF: rejected; atomic passes
  // (covered in the extension-chain test above).
  V6Opts frag_mf;
  frag_mf.first_next = 44;
  frag_mf.ext = ext_fragment(/*next=*/17, /*frag_field=*/0x0001);  // MF
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x86DD), ipv6_udp(payload, 1, 2, frag_mf)})),
      net::LinkType::kEthernet, out));
  V6Opts frag_offset;
  frag_offset.first_next = 44;
  frag_offset.ext = ext_fragment(/*next=*/17, /*frag_field=*/0x0008);
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x86DD),
                ipv6_udp(payload, 1, 2, frag_offset)})),
      net::LinkType::kEthernet, out));
}

TEST(LinkParser, BadLengthFieldsAreRejected) {
  const Bytes payload = probe_payload();
  net::RingFrame out;
  // IHL below the minimum header size.
  Bytes small_ihl = cat({eth_header(0x0800), ipv4_udp(payload, 1, 2)});
  small_ihl[14] = 0x43;  // version 4, IHL 3 words
  EXPECT_FALSE(net::parse_link_frame(view(small_ihl),
                                     net::LinkType::kEthernet, out));
  // IHL pointing past the captured frame.
  Bytes huge_ihl = cat({eth_header(0x0800), ipv4_udp(payload, 1, 2)});
  huge_ihl[14] = 0x4f;  // IHL 15 words = 60 bytes
  EXPECT_FALSE(net::parse_link_frame(view(huge_ihl),
                                     net::LinkType::kEthernet, out));
  // Total length with no room for a UDP header.
  V4Opts tiny_total;
  tiny_total.total_len_override = 20 + 4;
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0800),
                ipv4_udp(payload, 1, 2, tiny_total)})),
      net::LinkType::kEthernet, out));
  // UDP length below its own header size.
  V4Opts tiny_udp;
  tiny_udp.udp_len_override = 4;
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x0800), ipv4_udp(payload, 1, 2, tiny_udp)})),
      net::LinkType::kEthernet, out));
  // IPv6 payload length too small for the UDP header.
  V6Opts tiny_v6;
  tiny_v6.payload_len_override = 4;
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x86DD), ipv6_udp(payload, 1, 2, tiny_v6)})),
      net::LinkType::kEthernet, out));
  // IPv6 extension chain running past the frame.
  V6Opts runaway;
  runaway.first_next = 0;
  runaway.ext = ext_generic(/*next=*/17, /*len_units=*/0);
  runaway.ext[1] = 200;  // claims 1608 bytes of options
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x86DD), ipv6_udp(payload, 1, 2, runaway)})),
      net::LinkType::kEthernet, out));
  // Unknown IPv6 extension / next header (ESP, 50): fail closed.
  V6Opts esp;
  esp.first_next = 50;
  EXPECT_FALSE(net::parse_link_frame(
      view(cat({eth_header(0x86DD), ipv6_udp(payload, 1, 2, esp)})),
      net::LinkType::kEthernet, out));
}

TEST(LinkParser, RingEnvOverrideParsesOnlySaneValues) {
  ::setenv("SNMPFP_RING_BLOCKS", "32", 1);
  EXPECT_EQ(net::apply_ring_env({}).block_count, 32u);
  ::setenv("SNMPFP_RING_BLOCKS", "0", 1);
  EXPECT_EQ(net::apply_ring_env({}).block_count,
            net::PacketRingConfig{}.block_count);
  ::setenv("SNMPFP_RING_BLOCKS", "garbage", 1);
  EXPECT_EQ(net::apply_ring_env({}).block_count,
            net::PacketRingConfig{}.block_count);
  ::unsetenv("SNMPFP_RING_BLOCKS");
  EXPECT_EQ(net::apply_ring_env({}).block_count,
            net::PacketRingConfig{}.block_count);
}

// ---------------------------------------------------------------------------
// Receive errno taxonomy + EINTR regression (satellite: latent bug fix)
// ---------------------------------------------------------------------------

TEST(RecvErrnoTaxonomy, ClassifiesTheRecvErrnos) {
  using net::RecvErrnoAction;
  EXPECT_EQ(net::classify_recv_errno(EINTR), RecvErrnoAction::kRetry);
  EXPECT_EQ(net::classify_recv_errno(EAGAIN), RecvErrnoAction::kEmpty);
  EXPECT_EQ(net::classify_recv_errno(EWOULDBLOCK), RecvErrnoAction::kEmpty);
  EXPECT_EQ(net::classify_recv_errno(ECONNREFUSED),
            RecvErrnoAction::kRefused);
  EXPECT_EQ(net::classify_recv_errno(EBADF), RecvErrnoAction::kHard);
  EXPECT_EQ(net::classify_recv_errno(ENOMEM), RecvErrnoAction::kHard);
}

extern "C" void ring_test_noop_handler(int) {}

// Installs a SIGALRM handler without SA_RESTART (so blocking syscalls
// really see EINTR) and arms an ITIMER_REAL; restores both on destruction.
class InterruptingTimer {
 public:
  InterruptingTimer(int initial_ms, int interval_ms) {
    struct sigaction action {};
    action.sa_handler = ring_test_noop_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: the point is to surface EINTR
    sigaction(SIGALRM, &action, &previous_action_);
    itimerval timer{};
    timer.it_value.tv_usec = initial_ms * 1000;
    timer.it_interval.tv_usec = interval_ms * 1000;
    setitimer(ITIMER_REAL, &timer, &previous_timer_);
  }
  ~InterruptingTimer() {
    setitimer(ITIMER_REAL, &previous_timer_, nullptr);
    sigaction(SIGALRM, &previous_action_, nullptr);
  }

 private:
  struct sigaction previous_action_ {};
  itimerval previous_timer_{};
};

TEST(RecvEintr, InterruptedBlockingReceiveTimesOutCleanly) {
  auto socket = net::UdpSocket::open(net::Family::kIpv4);
  if (!socket.ok()) GTEST_SKIP() << "sockets unavailable: " << socket.error();
  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  ASSERT_TRUE(socket.value().bind_to(loopback).ok());

  // One-shot timer firing mid-wait: before the fix the EINTR surfaced as
  // a poll failure; now the wait re-arms and times out empty.
  InterruptingTimer timer(/*initial_ms=*/10, /*interval_ms=*/0);
  auto received = socket.value().receive(/*timeout_ms=*/60);
  ASSERT_TRUE(received.ok()) << received.error();
  EXPECT_FALSE(received.value().datagram.has_value());
  EXPECT_FALSE(received.value().refused);
}

TEST(RecvEintr, InterruptedEngineDrainDeliversEverythingWithoutErrors) {
  net::EngineConfig config;
  config.clock = net::EngineClock::kWall;
  config.batch_size = 32;
  config.flow_window = 0;
  auto sender = net::BatchedUdpEngine::open(config);
  if (!sender.ok()) GTEST_SKIP() << "sockets unavailable: " << sender.error();
  auto receiver = net::BatchedUdpEngine::open(config);
  ASSERT_TRUE(receiver.ok()) << receiver.error();
  net::BatchedUdpEngine& tx = *sender.value();
  net::BatchedUdpEngine& rx = *receiver.value();

  constexpr std::size_t kCount = 64;
  for (std::size_t i = 0; i < kCount; ++i) {
    auto frame = tx.acquire_send_frame(32);
    std::memset(frame.data(), static_cast<int>(i & 0xff), 32);
    tx.commit_send_frame({}, rx.local_endpoint(), 32, tx.now());
  }
  tx.flush();

  // A fast repeating timer peppers the drain loop with signals. Every
  // datagram is already queued in the kernel, so each interrupted wait
  // finds data on retry — the drain must complete with zero recv_errors.
  std::size_t got = 0;
  {
    InterruptingTimer timer(/*initial_ms=*/2, /*interval_ms=*/2);
    const util::VTime deadline = rx.now() + 2 * util::kSecond;
    while (got < kCount && rx.now() < deadline) {
      rx.run_until(rx.now() + 10 * util::kMillisecond);
      while (rx.receive_view()) ++got;
    }
  }
  EXPECT_EQ(got, kCount);
  EXPECT_EQ(rx.stats().recv_errors, 0u);
}

// ---------------------------------------------------------------------------
// Ring receiver over loopback (CAP_NET_RAW required, visible skip without)
// ---------------------------------------------------------------------------

// One shared probe so every ring test skips with the same message.
bool ring_available(std::string* why) {
  auto probe = net::PacketRingReceiver::open({});
  if (probe.ok()) return true;
  if (why != nullptr) *why = probe.error();
  return false;
}

#define SKIP_WITHOUT_RING()                                        \
  do {                                                             \
    std::string why;                                               \
    if (!ring_available(&why))                                     \
      GTEST_SKIP() << "SKIP (no CAP_NET_RAW): " << why;            \
  } while (0)

TEST(PacketRingReceiver, RingMatchesTheUdpSocketByteForByte) {
  SKIP_WITHOUT_RING();
  auto ring = net::PacketRingReceiver::open({});
  ASSERT_TRUE(ring.ok()) << ring.error();

  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  auto rx = net::UdpSocket::open(net::Family::kIpv4);
  ASSERT_TRUE(rx.ok());
  ASSERT_TRUE(rx.value().bind_to(loopback).ok());
  auto local = rx.value().local_endpoint();
  ASSERT_TRUE(local.ok());
  const std::uint16_t port = local.value().port;
  auto tx = net::UdpSocket::open(net::Family::kIpv4);
  ASSERT_TRUE(tx.ok());

  constexpr std::size_t kCount = 50;
  std::multiset<std::string> sent;
  for (std::size_t i = 0; i < kCount; ++i) {
    Bytes payload(40 + i % 7, static_cast<std::uint8_t>(i));
    payload[0] = static_cast<std::uint8_t>(i >> 8);
    payload[1] = static_cast<std::uint8_t>(i);
    ASSERT_TRUE(tx.value().send_to(local.value(), view(payload)).ok());
    sent.insert(std::string(payload.begin(), payload.end()));
  }

  // The ring sees all loopback traffic; keep only frames addressed to our
  // receiver port. Loopback delivers each datagram twice (OUTGOING +
  // HOST); next() already skips the outgoing copy.
  std::multiset<std::string> from_ring;
  for (int spins = 0; from_ring.size() < kCount && spins < 400; ++spins) {
    while (const auto frame = ring.value()->next(/*timeout_ms=*/10)) {
      if (frame->dst_port != port) continue;
      EXPECT_FALSE(frame->truncated);
      EXPECT_EQ(frame->source.address,
                net::IpAddress(net::Ipv4(127, 0, 0, 1)));
      from_ring.insert(
          std::string(frame->payload.begin(), frame->payload.end()));
      if (from_ring.size() == kCount) break;
    }
  }
  EXPECT_EQ(from_ring, sent);

  // Differential: the UDP socket read the same byte-identical set.
  std::multiset<std::string> from_socket;
  for (int spins = 0; from_socket.size() < kCount && spins < 400; ++spins) {
    auto received = rx.value().receive(/*timeout_ms=*/10);
    ASSERT_TRUE(received.ok()) << received.error();
    if (!received.value().datagram.has_value()) continue;
    from_socket.insert(
        std::string(received.value().datagram->payload.begin(),
                    received.value().datagram->payload.end()));
  }
  EXPECT_EQ(from_socket, sent);

  const net::RingCounters& counters = ring.value()->counters();
  EXPECT_GE(counters.frames, kCount);
  EXPECT_GT(counters.blocks, 0u);
}

TEST(PacketRingFanout, EveryFlowLandsOnExactlyOneRing) {
  SKIP_WITHOUT_RING();
  constexpr std::size_t kRings = 4;
  std::vector<std::unique_ptr<net::PacketRingReceiver>> rings;
  const int group_id =
      static_cast<int>((::getpid() * 31 + 0x0f0f) & 0xFFFF);
  for (std::size_t i = 0; i < kRings; ++i) {
    auto ring = net::PacketRingReceiver::open({});
    ASSERT_TRUE(ring.ok()) << ring.error();
    auto joined = ring.value()->join_fanout(group_id);
    ASSERT_TRUE(joined.ok()) << joined.error();
    rings.push_back(std::move(ring.value()));
  }

  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  auto sink = net::UdpSocket::open(net::Family::kIpv4);
  ASSERT_TRUE(sink.ok());
  ASSERT_TRUE(sink.value().bind_to(loopback).ok());
  auto sink_endpoint = sink.value().local_endpoint();
  ASSERT_TRUE(sink_endpoint.ok());
  const std::uint16_t sink_port = sink_endpoint.value().port;

  // Eight flows (distinct source ports), five datagrams each.
  constexpr std::size_t kFlows = 8;
  constexpr std::size_t kPerFlow = 5;
  std::vector<net::UdpSocket> senders;
  std::set<std::uint16_t> flow_ports;
  for (std::size_t f = 0; f < kFlows; ++f) {
    auto tx = net::UdpSocket::open(net::Family::kIpv4);
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(tx.value().bind_to(loopback).ok());
    auto bound = tx.value().local_endpoint();
    ASSERT_TRUE(bound.ok());
    flow_ports.insert(bound.value().port);
    senders.push_back(std::move(tx.value()));
  }
  const Bytes payload(48, 0x55);
  for (std::size_t round = 0; round < kPerFlow; ++round)
    for (auto& tx : senders)
      ASSERT_TRUE(tx.send_to(sink_endpoint.value(), view(payload)).ok());

  // flow source port -> set of ring indices it appeared on.
  std::map<std::uint16_t, std::set<std::size_t>> steering;
  std::size_t seen = 0;
  for (int spins = 0; seen < kFlows * kPerFlow && spins < 400; ++spins) {
    for (std::size_t i = 0; i < rings.size(); ++i) {
      while (const auto frame = rings[i]->next(/*timeout_ms=*/5)) {
        if (frame->dst_port != sink_port) continue;
        if (flow_ports.count(frame->source.port) == 0) continue;
        steering[frame->source.port].insert(i);
        ++seen;
      }
    }
  }
  EXPECT_EQ(seen, kFlows * kPerFlow);
  ASSERT_EQ(steering.size(), kFlows);
  for (const auto& [flow_port, ring_set] : steering) {
    SCOPED_TRACE("flow source port " + std::to_string(flow_port));
    EXPECT_EQ(ring_set.size(), 1u)
        << "PACKET_FANOUT_HASH split one flow across rings";
  }
}

// ---------------------------------------------------------------------------
// Tentpole contract: pipeline through ring receive == sim fabric, bit for
// bit, at 1/2/8 threads (mirrors test_net_engine's equality harness)
// ---------------------------------------------------------------------------

topo::WorldConfig deterministic_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 17;
  config.future_time_rate = 0.0;
  config.time_jitter_rate = 0.0;
  config.load_balancer_rate = 0.0;
  return config;
}

sim::FabricConfig deterministic_fabric() {
  sim::FabricConfig fabric;
  fabric.probe_loss = 0.0;
  fabric.response_loss = 0.0;
  fabric.min_rtt = 20 * util::kMillisecond;
  fabric.max_rtt = 20 * util::kMillisecond;
  return fabric;
}

enum class Mode { kSim, kNetRecvmmsg, kNetRing };

core::PipelineResult run_equality_pipeline(Mode mode, std::size_t threads) {
  core::PipelineOptions options;
  options.world = deterministic_world();
  options.fabric = deterministic_fabric();
  options.parallel.threads = threads;
  if (mode != Mode::kSim) {
    net::EngineConfig engine;
    engine.clock = net::EngineClock::kVirtual;
    engine.batch_size = 16;
    options.net_engine = engine;
    options.net_rtt = 20 * util::kMillisecond;
    options.net_ring_receive = mode == Mode::kNetRing;
  }
  return core::run_full_pipeline(options);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  EXPECT_EQ(a.undecodable_responses, b.undecodable_responses);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target);
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.response_bytes, rb.response_bytes);
  }
}

void expect_identical(const core::PipelineResult& a,
                      const core::PipelineResult& b) {
  expect_same_scan(a.v4_campaign.scan1, b.v4_campaign.scan1);
  expect_same_scan(a.v4_campaign.scan2, b.v4_campaign.scan2);
  expect_same_scan(a.v6_campaign.scan1, b.v6_campaign.scan1);
  expect_same_scan(a.v6_campaign.scan2, b.v6_campaign.scan2);
  ASSERT_EQ(a.v4_records.size(), b.v4_records.size());
  ASSERT_EQ(a.v6_records.size(), b.v6_records.size());
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i)
    ASSERT_EQ(a.resolution.sets[i].addresses,
              b.resolution.sets[i].addresses);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i)
    EXPECT_EQ(a.devices[i].fingerprint.vendor,
              b.devices[i].fingerprint.vendor);
}

TEST(PacketRingPipeline, BitIdenticalToSimAndRecvmmsgAcrossThreadCounts) {
  {
    net::EngineConfig probe;
    auto available = net::BatchedUdpEngine::open(probe);
    if (!available.ok())
      GTEST_SKIP() << "sockets unavailable: " << available.error();
  }
  const bool have_ring = ring_available(nullptr);
  const core::PipelineResult sim_run = run_equality_pipeline(Mode::kSim, 1);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const core::PipelineResult ring_run =
        run_equality_pipeline(Mode::kNetRing, threads);
    if (!ring_run.v4_campaign.net_error.empty())
      GTEST_SKIP() << "net engine unavailable: "
                   << ring_run.v4_campaign.net_error;
    expect_identical(sim_run, ring_run);
    EXPECT_GT(ring_run.v4_campaign.net_io.datagrams_sent, 0u);
    if (have_ring) {
      // With CAP_NET_RAW the responses really came off the rings.
      EXPECT_GT(ring_run.v4_campaign.net_io.ring_frames, 0u);
      EXPECT_GT(ring_run.v4_campaign.net_io.ring_blocks, 0u);
    }
  }
  // Ring and recvmmsg receive halves agree bit for bit too.
  const core::PipelineResult mmsg_run =
      run_equality_pipeline(Mode::kNetRecvmmsg, 2);
  if (mmsg_run.v4_campaign.net_error.empty()) {
    expect_identical(mmsg_run, run_equality_pipeline(Mode::kNetRing, 2));
    EXPECT_EQ(mmsg_run.v4_campaign.net_io.ring_frames, 0u);
  }
}

}  // namespace
}  // namespace snmpv3fp
