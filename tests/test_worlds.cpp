// Procedural world + streaming target tests.
//
// The load-bearing guarantees: (1) TargetGenerator is a seeded bijection
// over its prefix ranges — every address exactly once, reproducible from
// (spec, seed) alone; (2) lazy derivation is pure and byte-identical to
// materialize(), including through a bounded cache that evicts; (3) a
// procedural world restricted to static scenario layers produces a
// bit-identical PipelineResult to its equivalently-seeded materialized
// twin; (4) spec-mode (generator-fed) campaigns find the same responders
// as list-mode campaigns and survive kill/resume bit-identically at
// 1/2/8 threads; (5) each scenario layer's ground truth holds: NAT pools
// resolve as alias sets, anycast stays within its site budget and
// re-resolves on churn, CGNAT churn breaks cross-scan consistency, and
// aliased /64s answer on every IID and are flagged by the prescan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/alias.hpp"
#include "core/join.hpp"
#include "core/pipeline.hpp"
#include "scan/aliased_prefix.hpp"
#include "scan/campaign.hpp"
#include "scan/checkpoint.hpp"
#include "scan/targets.hpp"
#include "sim/fabric.hpp"
#include "topo/procedural.hpp"
#include "topo/world_model.hpp"

namespace snmpv3fp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---- streaming target generator -------------------------------------------

TEST(TargetGenerator, VisitsEveryAddressExactlyOnce) {
  scan::TargetSpec spec;
  spec.ranges = {net::Prefix4(net::Ipv4(10, 1, 0, 0), 24),
                 net::Prefix4(net::Ipv4(192, 168, 4, 0), 26)};
  const scan::TargetGenerator generator(spec, 42);
  ASSERT_EQ(generator.size(), 256u + 64u);

  std::set<net::IpAddress> seen;
  for (std::uint64_t i = 0; i < generator.size(); ++i)
    EXPECT_TRUE(seen.insert(generator.at(i)).second) << "duplicate at " << i;

  std::set<net::IpAddress> expected;
  for (const auto& range : spec.ranges)
    for (std::uint64_t i = 0; i < range.size(); ++i)
      expected.insert(net::IpAddress(range.at(i)));
  EXPECT_EQ(seen, expected);
}

TEST(TargetGenerator, SameSeedSameOrderDifferentSeedDifferentOrder) {
  scan::TargetSpec spec;
  spec.ranges = {net::Prefix4(net::Ipv4(10, 2, 0, 0), 22)};
  const scan::TargetGenerator a(spec, 7), b(spec, 7), c(spec, 8);
  bool any_differs = false;
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << i;
    any_differs = any_differs || a.at(i) != c.at(i);
  }
  EXPECT_TRUE(any_differs);
  // And the order is actually permuted, not sequential.
  bool non_sequential = false;
  for (std::uint64_t i = 1; i < a.size() && !non_sequential; ++i)
    non_sequential = a.at(i) < a.at(i - 1);
  EXPECT_TRUE(non_sequential);
}

// ---- lazy derivation vs materialize ----------------------------------------

void expect_same_device(const topo::Device& a, const topo::Device& b,
                        const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.vendor, b.vendor);  // both point into the builtin tables
  EXPECT_EQ(a.snmpv3_enabled, b.snmpv3_enabled);
  EXPECT_EQ(a.engine_id, b.engine_id);
  EXPECT_EQ(a.empty_engine_id_bug, b.empty_engine_id_bug);
  EXPECT_EQ(a.zero_time_bug, b.zero_time_bug);
  EXPECT_EQ(a.future_time_bug, b.future_time_bug);
  EXPECT_EQ(a.clock_skew_ppm, b.clock_skew_ppm);
  EXPECT_EQ(a.time_jitter_s, b.time_jitter_s);
  EXPECT_EQ(a.reboots, b.reboots);
  EXPECT_EQ(a.boots_before_history, b.boots_before_history);
  EXPECT_EQ(a.backend_engines, b.backend_engines);
  EXPECT_EQ(a.answers_whole_v6_prefix, b.answers_whole_v6_prefix);
  ASSERT_EQ(a.interfaces.size(), b.interfaces.size());
  for (std::size_t i = 0; i < a.interfaces.size(); ++i) {
    EXPECT_EQ(a.interfaces[i].mac, b.interfaces[i].mac);
    EXPECT_EQ(a.interfaces[i].v4, b.interfaces[i].v4);
    EXPECT_EQ(a.interfaces[i].v6, b.interfaces[i].v6);
  }
}

TEST(ProceduralWorld, DeriveMatchesMaterializeOnEveryAddress) {
  const topo::ProceduralWorld procedural(topo::ProceduralConfig::tiny());
  const topo::World materialized = procedural.materialize();
  ASSERT_EQ(materialized.devices.size(), procedural.device_count());

  for (const auto family : {net::Family::kIpv4, net::Family::kIpv6}) {
    for (const auto& address : materialized.addresses(family)) {
      const auto derived = procedural.derive(address);
      ASSERT_TRUE(derived.has_value()) << address.to_string();
      const topo::Device* truth = materialized.device_at(address);
      ASSERT_NE(truth, nullptr) << address.to_string();
      expect_same_device(*derived, *truth, address.to_string());
      // Purity: a second derivation yields the same bytes.
      const auto again = procedural.derive(address);
      expect_same_device(*derived, *again, "re-derive " + address.to_string());
    }
  }

  // Dead space stays dead: the address after a region's end derives
  // nothing (10.60.4.0 is past tiny()'s middlebox /22).
  EXPECT_FALSE(
      procedural.derive(net::IpAddress(net::Ipv4(10, 60, 4, 0))).has_value());
  EXPECT_FALSE(
      procedural.derive(net::IpAddress(net::Ipv4(203, 0, 113, 1))).has_value());
}

TEST(ProceduralWorld, BoundedCacheEvictsWithoutChangingDevices) {
  auto config = topo::ProceduralConfig::tiny();
  config.cache_capacity = 8;
  const topo::ProceduralWorld procedural(config);
  const topo::World materialized = procedural.materialize();
  const auto view = procedural.open_view();

  const auto addresses = materialized.addresses(net::Family::kIpv4);
  ASSERT_GT(addresses.size(), 8u * 4);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& address : addresses) {
      const topo::Device* lazy = view->device_at(address);
      ASSERT_NE(lazy, nullptr) << address.to_string();
      expect_same_device(*lazy, *materialized.device_at(address),
                         "pass " + std::to_string(pass) + " " +
                             address.to_string());
    }
  }
  const auto stats = view->cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident, 8u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 2 * addresses.size());
}

// ---- procedural vs materialized pipeline equivalence -----------------------

// Static scenario layers only: anycast and CGNAT identities are epoch
// functions with procedural (not materialized-churn) semantics, so the
// bit-equivalence claim is scoped to layers whose devices never change
// between epochs.
topo::ProceduralConfig static_layer_config() {
  topo::ProceduralConfig config;
  config.seed = 0x57a71c;
  topo::ScenarioRegion plain;
  plain.kind = topo::ScenarioKind::kPlain;
  plain.v4 = net::Prefix4(net::Ipv4(10, 10, 0, 0), 22);
  plain.block_bits = 6;
  plain.responders_per_block = 2;
  topo::ScenarioRegion nat;
  nat.kind = topo::ScenarioKind::kNatPool;
  nat.v4 = net::Prefix4(net::Ipv4(10, 20, 0, 0), 25);
  nat.pool_bits = 4;
  nat.market_region = "NA";
  topo::ScenarioRegion balancer;
  balancer.kind = topo::ScenarioKind::kLoadBalancer;
  balancer.v4 = net::Prefix4(net::Ipv4(10, 30, 0, 0), 23);
  balancer.block_bits = 7;
  balancer.responders_per_block = 2;
  balancer.backends = 2;
  topo::ScenarioRegion middlebox;
  middlebox.kind = topo::ScenarioKind::kMiddlebox;
  middlebox.v4 = net::Prefix4(net::Ipv4(10, 60, 0, 0), 23);
  middlebox.block_bits = 8;
  middlebox.responders_per_block = 1;
  topo::ScenarioRegion aliased;
  aliased.kind = topo::ScenarioKind::kAliasedPrefix;
  aliased.v6_base =
      net::Ipv6::from_groups({0x2001, 0x0db8, 0x00bb, 0, 0, 0, 0, 0});
  aliased.v6_prefix_len = 62;
  aliased.v6_iids_per_pool = 3;
  config.regions = {plain, nat, balancer, middlebox, aliased};
  return config;
}

void expect_same_joined(const std::vector<core::JoinedRecord>& a,
                        const std::vector<core::JoinedRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].address, b[i].address) << "joined " << i;
    EXPECT_EQ(a[i].first.engine_id, b[i].first.engine_id);
    EXPECT_EQ(a[i].second.engine_id, b[i].second.engine_id);
    EXPECT_EQ(a[i].first.engine_boots, b[i].first.engine_boots);
    EXPECT_EQ(a[i].first.engine_time, b[i].first.engine_time);
    EXPECT_EQ(a[i].first.send_time, b[i].first.send_time);
    EXPECT_EQ(a[i].second.receive_time, b[i].second.receive_time);
    EXPECT_EQ(a[i].first.response_count, b[i].first.response_count);
    EXPECT_EQ(a[i].first.extra_engines, b[i].first.extra_engines);
  }
}

void expect_same_pipeline_result(const core::PipelineResult& a,
                                 const core::PipelineResult& b) {
  expect_same_joined(a.v4_joined, b.v4_joined);
  expect_same_joined(a.v6_joined, b.v6_joined);
  expect_same_joined(a.v4_records, b.v4_records);
  expect_same_joined(a.v6_records, b.v6_records);
  EXPECT_EQ(a.v4_join_stats.overlap, b.v4_join_stats.overlap);
  EXPECT_EQ(a.v4_join_stats.first_only, b.v4_join_stats.first_only);
  EXPECT_EQ(a.v4_join_stats.second_only, b.v4_join_stats.second_only);
  EXPECT_EQ(a.v6_join_stats.overlap, b.v6_join_stats.overlap);
  EXPECT_EQ(a.v4_report.dropped, b.v4_report.dropped);
  EXPECT_EQ(a.v6_report.dropped, b.v6_report.dropped);
  EXPECT_EQ(a.hitlist_v6, b.hitlist_v6);
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    EXPECT_EQ(a.resolution.sets[i].addresses, b.resolution.sets[i].addresses);
    EXPECT_EQ(a.resolution.sets[i].engine_id, b.resolution.sets[i].engine_id);
  }
  ASSERT_EQ(a.devices.size(), b.devices.size());
  EXPECT_EQ(a.router_device_count(), b.router_device_count());
}

TEST(ProceduralWorld, PipelineBitIdenticalToMaterializedTwin) {
  core::PipelineOptions options;
  options.seed = 991;
  options.scan_shards = 2;
  options.parallel.threads = 2;

  topo::ProceduralWorld procedural(static_layer_config());
  const topo::World twin = procedural.materialize();
  const auto lazy = core::run_full_pipeline(procedural, options);
  const auto eager = core::run_full_pipeline(twin, options);

  ASSERT_FALSE(lazy.interrupted);
  ASSERT_GT(lazy.v4_records.size(), 0u);
  ASSERT_GT(lazy.devices.size(), 0u);
  expect_same_pipeline_result(lazy, eager);
  // The lazy run actually exercised the cache.
  EXPECT_GT(lazy.v4_campaign.responder_cache.misses, 0u);
  EXPECT_GT(lazy.v4_campaign.responder_cache.hits, 0u);
  // The materialized run's view derives nothing.
  EXPECT_EQ(eager.v4_campaign.responder_cache.misses, 0u);
}

// ---- spec-mode (streaming) campaigns ---------------------------------------

scan::CampaignOptions zero_loss_options(std::uint64_t seed) {
  scan::CampaignOptions options;
  options.seed = seed;
  options.shards = 4;
  options.rate_pps = 20000.0;
  options.fabric.probe_loss = 0.0;
  options.fabric.response_loss = 0.0;
  return options;
}

std::set<net::IpAddress> responder_set(const scan::ScanResult& result) {
  std::set<net::IpAddress> set;
  for (const auto& record : result.records) set.insert(record.target);
  return set;
}

TEST(SpecModeCampaign, FindsSameRespondersAsListMode) {
  const auto config = topo::ProceduralConfig::tiny();

  topo::ProceduralWorld list_world(config);
  const auto list_pair =
      scan::run_two_scan_campaign(list_world, zero_loss_options(311));

  topo::ProceduralWorld spec_world(config);
  auto spec_options = zero_loss_options(311);
  scan::TargetSpec spec;
  for (const auto& region : config.regions)
    if (region.kind != topo::ScenarioKind::kAliasedPrefix)
      spec.ranges.push_back(region.v4);
  spec_options.target_spec = spec;
  const auto spec_pair = scan::run_two_scan_campaign(spec_world, spec_options);

  // The sweep probes whole prefixes, the list only known-assigned
  // addresses — but at zero loss every responder answers both ways.
  std::set<net::IpAddress> expected;
  for (const auto& address :
       list_world.campaign_targets(net::Family::kIpv4, 0))
    expected.insert(address);
  EXPECT_EQ(responder_set(list_pair.scan1), expected);
  EXPECT_EQ(responder_set(spec_pair.scan1), expected);
  EXPECT_EQ(responder_set(spec_pair.scan2), expected);
  EXPECT_GT(spec_pair.scan1.targets_probed, expected.size());
  // Spec mode derives lazily; the cache saw real traffic.
  EXPECT_GT(spec_pair.responder_cache.misses, 0u);
  EXPECT_GT(spec_pair.responder_cache.hit_rate(), 0.0);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target) << "record " << i;
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.extra_engines, rb.extra_engines);
  }
}

TEST(SpecModeCampaign, KillResumeBitIdenticalAtThreadCounts) {
  const auto config = topo::ProceduralConfig::tiny();
  scan::TargetSpec spec;
  for (const auto& region : config.regions)
    if (region.kind != topo::ScenarioKind::kAliasedPrefix)
      spec.ranges.push_back(region.v4);

  auto base = zero_loss_options(777);
  base.target_spec = spec;

  topo::ProceduralWorld reference_world(config);
  const auto reference = scan::run_two_scan_campaign(reference_world, base);
  ASSERT_FALSE(reference.interrupted);
  ASSERT_GT(reference.scan1.responsive(), 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto path =
        temp_path("worlds_ckpt_t" + std::to_string(threads) + ".json");
    scan::remove_checkpoint(path);

    auto killed_options = base;
    killed_options.parallel.threads = threads;
    killed_options.checkpoint_path = path;
    killed_options.checkpoint_every_n_targets = 256;
    killed_options.abort_after_checkpoints = 1;
    topo::ProceduralWorld killed_world(config);
    const auto killed = scan::run_two_scan_campaign(killed_world, killed_options);
    EXPECT_TRUE(killed.interrupted) << threads << " threads";
    ASSERT_TRUE(scan::load_checkpoint(path).has_value());

    // A fresh process: new pre-churn model, resume from the file. The
    // checkpoint carries each shard's sweep cursor and responder-cache
    // snapshot; the generator itself is rebuilt from (spec, seed).
    auto resume_options = killed_options;
    resume_options.abort_after_checkpoints = 0;
    topo::ProceduralWorld resume_world(config);
    const auto resumed =
        scan::run_two_scan_campaign(resume_world, resume_options);
    EXPECT_FALSE(resumed.interrupted);

    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_scan(reference.scan1, resumed.scan1);
    expect_same_scan(reference.scan2, resumed.scan2);
    EXPECT_FALSE(scan::load_checkpoint(path).has_value());
  }
}

// ---- scenario-layer ground truth -------------------------------------------

topo::ProceduralConfig single_region_config(topo::ScenarioRegion region,
                                            std::uint64_t seed) {
  topo::ProceduralConfig config;
  config.seed = seed;
  config.regions = {std::move(region)};
  // Keep engine-state faults out of the ground-truth assertions.
  config.empty_engine_id_rate = 0.0;
  config.zero_time_rate = 0.0;
  config.future_time_rate = 0.0;
  return config;
}

TEST(ScenarioLayers, NatPoolSharesOneEngineAndResolvesAsAliasSet) {
  topo::ScenarioRegion region;
  region.kind = topo::ScenarioKind::kNatPool;
  region.v4 = net::Prefix4(net::Ipv4(10, 20, 0, 0), 26);
  region.pool_bits = 3;  // 8 pools of 8 addresses
  // Seed chosen so no pool draws the constant-engine-ID vendor bug (that
  // bug deliberately merges pools — the ablation AliasOptions::engine_id_only
  // exists for — which is not this test's claim).
  topo::ProceduralWorld world(single_region_config(region, 1602));

  // Derivation-level: one device (one engine) per 8-address pool.
  std::map<std::uint32_t, std::set<snmp::EngineId>> engines_by_pool;
  for (const auto& address :
       world.campaign_targets(net::Family::kIpv4, 0)) {
    const auto device = world.derive(address);
    ASSERT_TRUE(device.has_value());
    engines_by_pool[address.v4().value() >> 3].insert(device->engine_id);
  }
  ASSERT_EQ(engines_by_pool.size(), 8u);
  std::set<snmp::EngineId> distinct;
  for (const auto& [pool, engines] : engines_by_pool) {
    EXPECT_EQ(engines.size(), 1u) << "pool " << pool;
    distinct.insert(*engines.begin());
  }
  EXPECT_EQ(distinct.size(), 8u);

  // End to end: a zero-loss campaign joined and alias-resolved groups each
  // pool into one 8-address set (run directly, not through the filter
  // funnel — pool-shared engines are exactly what the promiscuous-payload
  // filter is designed to drop).
  const auto pair = scan::run_two_scan_campaign(world, zero_loss_options(55));
  core::JoinStats stats;
  const auto joined = core::join_scans(pair.scan1, pair.scan2, &stats);
  ASSERT_EQ(joined.size(), 64u);
  const auto resolution = core::resolve_aliases(joined);
  std::size_t pools_resolved = 0;
  for (const auto& set : resolution.sets) {
    if (set.addresses.size() != 8) continue;
    ++pools_resolved;
    const std::uint32_t pool = set.addresses.front().v4().value() >> 3;
    for (const auto& address : set.addresses)
      EXPECT_EQ(address.v4().value() >> 3, pool);
  }
  EXPECT_EQ(pools_resolved, 8u);
}

TEST(ScenarioLayers, AnycastStaysWithinSiteBudgetAndReResolvesOnChurn) {
  topo::ScenarioRegion region;
  region.kind = topo::ScenarioKind::kAnycast;
  region.v4 = net::Prefix4(net::Ipv4(10, 40, 0, 0), 22);
  region.block_bits = 6;
  region.responders_per_block = 2;
  region.sites = 3;
  topo::ProceduralWorld world(single_region_config(region, 1602));

  const auto targets = world.campaign_targets(net::Family::kIpv4, 0);
  ASSERT_EQ(targets.size(), 32u);
  std::set<snmp::EngineId> engines_before;
  std::map<net::IpAddress, snmp::EngineId> by_address;
  for (const auto& address : targets) {
    const auto device = world.derive(address);
    ASSERT_TRUE(device.has_value());
    engines_before.insert(device->engine_id);
    by_address.emplace(address, device->engine_id);
  }
  // Every address is served by one of at most `sites` global engines.
  EXPECT_LE(engines_before.size(), 3u);
  EXPECT_GT(engines_before.size(), 1u);

  world.apply_churn(0xfeed);
  std::size_t moved = 0;
  for (const auto& address : targets) {
    const auto device = world.derive(address);
    ASSERT_TRUE(device.has_value());
    if (device->engine_id != by_address.at(address)) ++moved;
  }
  // The serving site re-resolves per epoch: some addresses moved, and the
  // address plan itself never changes.
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(world.campaign_targets(net::Family::kIpv4, 0), targets);
}

TEST(ScenarioLayers, CgnatChurnBreaksCrossScanConsistency) {
  topo::ScenarioRegion region;
  region.kind = topo::ScenarioKind::kCgnatChurn;
  region.v4 = net::Prefix4(net::Ipv4(10, 50, 0, 0), 26);
  topo::ProceduralWorld world(single_region_config(region, 1603));

  // Identity churns between epochs while the address plan stays fixed.
  const auto targets = world.campaign_targets(net::Family::kIpv4, 0);
  const auto before = world.derive(targets.front());
  world.apply_churn(0xbeef);
  const auto after = world.derive(targets.front());
  ASSERT_TRUE(before.has_value() && after.has_value());
  EXPECT_NE(before->engine_id, after->engine_id);
  EXPECT_EQ(world.campaign_targets(net::Family::kIpv4, 0), targets);

  // Across a two-scan campaign the churn lands between the scans, so the
  // joined records disagree with themselves — the inconsistency the
  // paper's filters exist to remove.
  topo::ProceduralWorld campaign_world(single_region_config(region, 1603));
  const auto pair =
      scan::run_two_scan_campaign(campaign_world, zero_loss_options(77));
  const auto joined = core::join_scans(pair.scan1, pair.scan2);
  ASSERT_EQ(joined.size(), 64u);
  std::size_t churned = 0;
  for (const auto& record : joined)
    if (!record.engine_ids_match()) ++churned;
  EXPECT_GT(churned, joined.size() / 2);
}

TEST(ScenarioLayers, AliasedPrefixAnswersEveryIidAndPrescanFlagsIt) {
  topo::ScenarioRegion region;
  region.kind = topo::ScenarioKind::kAliasedPrefix;
  region.v6_base =
      net::Ipv6::from_groups({0x2001, 0x0db8, 0x00cc, 0, 0, 0, 0, 0});
  region.v6_prefix_len = 62;  // 4 aliased /64 pools
  region.v6_iids_per_pool = 3;
  topo::ProceduralWorld world(single_region_config(region, 1604));

  const auto hitlist = world.campaign_targets(net::Family::kIpv6, 0);
  ASSERT_EQ(hitlist.size(), 12u);

  // A random, never-enumerated IID inside a pool's /64 answers with the
  // same device as the pool's hitlist addresses.
  auto bytes = hitlist.front().v6().to_bytes();
  std::array<std::uint8_t, 16> raw{};
  std::copy(bytes.begin(), bytes.end(), raw.begin());
  for (int i = 8; i < 16; ++i) raw[i] = static_cast<std::uint8_t>(0xd0 + i);
  const net::IpAddress random_iid{net::Ipv6(raw)};
  const auto surprise = world.derive(random_iid);
  const auto enumerated = world.derive(hitlist.front());
  ASSERT_TRUE(surprise.has_value() && enumerated.has_value());
  EXPECT_EQ(surprise->index, enumerated->index);
  EXPECT_EQ(surprise->engine_id, enumerated->engine_id);
  EXPECT_TRUE(enumerated->answers_whole_v6_prefix);

  // The Gasser-style prescan over the lazy fabric flags all four pools.
  sim::FabricConfig fabric_config;
  fabric_config.seed = 9;
  fabric_config.probe_loss = 0.0;
  fabric_config.response_loss = 0.0;
  sim::Fabric fabric(world, fabric_config);
  const auto detection = scan::detect_aliased_prefixes(
      fabric, {net::IpAddress(net::Ipv4(198, 51, 100, 7)), 54320}, hitlist);
  EXPECT_EQ(detection.aliased_prefixes.size(), 4u);
  EXPECT_TRUE(scan::filter_aliased(hitlist, detection).empty());
}

}  // namespace
}  // namespace snmpv3fp
