// Robustness and pacing properties that cut across modules: agents must
// survive arbitrary garbage, the prober must pace at the configured rate,
// the fabric must respect its latency envelope, and the medium-size world
// configs must stay internally consistent.
#include <gtest/gtest.h>

#include <set>

#include "scan/prober.hpp"
#include "sim/agent.hpp"
#include "snmp/usm.hpp"
#include "sim/fabric.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

topo::Device hardened_device() {
  topo::Device device;
  device.kind = topo::DeviceKind::kRouter;
  device.vendor = &topo::vendor_profile("Cisco");
  topo::Interface itf;
  itf.mac = net::MacAddress::from_oui(0x00000c, 1);
  itf.v4 = net::Ipv4(192, 0, 2, 1);
  device.interfaces.push_back(itf);
  device.snmpv3_enabled = true;
  device.snmpv2_enabled = true;
  device.usm_user = "netops";
  device.usm_auth_password = "pw";
  device.engine_id = snmp::EngineId::make_mac(9, itf.mac);
  device.reboots = {-util::kDay};
  device.boots_before_history = 1;
  return device;
}

// Pure random bytes must never crash an agent; if the agent answers at
// all, the bytes must have parsed as SNMP.
TEST(AgentFuzz, RandomBytesNeverCrash) {
  const auto device = hardened_device();
  util::Rng rng(0xf22);
  for (int round = 0; round < 20000; ++round) {
    util::Bytes payload;
    const std::size_t length = rng.next_below(120);
    for (std::size_t i = 0; i < length; ++i)
      payload.push_back(static_cast<std::uint8_t>(rng.next()));
    const auto responses = sim::handle_udp(device, payload, 0, rng);
    if (!responses.empty()) {
      EXPECT_TRUE(snmp::peek_version(payload).ok());
    }
  }
  SUCCEED();
}

// Mutations of a VALID discovery probe: the agent either ignores or
// answers with a decodable report — never emits garbage.
TEST(AgentFuzz, MutatedDiscoveryYieldsDecodableResponsesOnly) {
  const auto device = hardened_device();
  const auto valid = snmp::make_discovery_request(5000, 5001).encode();
  util::Rng rng(77);
  for (int round = 0; round < 20000; ++round) {
    util::Bytes mutated = valid;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    for (const auto& response : sim::handle_udp(device, mutated, 0, rng)) {
      EXPECT_TRUE(snmp::V3Message::decode(response).ok());
    }
  }
}

// Authenticated path with corrupted MACs must reject without crashing.
TEST(AgentFuzz, CorruptedAuthParamsRejected) {
  const auto device = hardened_device();
  const auto key = snmp::derive_localized_key(snmp::AuthProtocol::kHmacSha1_96,
                                              "pw", device.engine_id);
  auto request = snmp::make_discovery_request(1, 2);
  request.usm.authoritative_engine_id = device.engine_id;
  request.usm.user_name = "netops";
  auto signed_message =
      snmp::authenticate(snmp::AuthProtocol::kHmacSha1_96, key, request);
  util::Rng rng(3);
  // Valid signature answers.
  EXPECT_EQ(sim::handle_udp(device, signed_message.encode(), 0, rng).size(),
            1u);
  // Any corrupted signature is silently rejected.
  for (std::size_t i = 0; i < snmp::kAuthParamsLength; ++i) {
    auto corrupted = signed_message;
    corrupted.usm.authentication_parameters[i] ^= 0x01;
    EXPECT_TRUE(sim::handle_udp(device, corrupted.encode(), 0, rng).empty());
  }
}

TEST(ProberPacing, VirtualDurationMatchesRate) {
  topo::World world = topo::generate_world(topo::WorldConfig::tiny());
  sim::Fabric fabric(world, {});
  scan::Prober prober(fabric, {net::Ipv4(198, 51, 100, 7), 4444});
  auto targets = world.addresses(net::Family::kIpv4);
  targets.resize(std::min<std::size_t>(targets.size(), 2000));

  scan::ProbeConfig config;
  config.rate_pps = 1000.0;
  config.response_timeout = util::kSecond;
  const auto result = prober.run(targets, config, /*start=*/0);
  const double expected_seconds =
      static_cast<double>(targets.size()) / config.rate_pps;
  EXPECT_NEAR(util::to_seconds(result.end_time - result.start_time),
              expected_seconds + 1.0 /* drain */, 0.1);
}

TEST(FabricLatency, ResponsesArriveWithinConfiguredEnvelope) {
  topo::World world = topo::generate_world(topo::WorldConfig::tiny());
  sim::FabricConfig config;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  config.min_rtt = 50 * util::kMillisecond;
  config.max_rtt = 80 * util::kMillisecond;
  sim::Fabric fabric(world, config);
  scan::Prober prober(fabric, {net::Ipv4(198, 51, 100, 7), 4444});
  const auto result = prober.run(world.addresses(net::Family::kIpv4), {}, 0);
  ASSERT_GT(result.responsive(), 0u);
  for (const auto& record : result.records) {
    if (record.response_count > 1) continue;  // amplified copies trickle
    const auto rtt = record.receive_time - record.send_time;
    EXPECT_GE(rtt, config.min_rtt);
    EXPECT_LE(rtt, config.max_rtt + util::kMillisecond);
  }
}

// The production world configs must be self-consistent (fast sanity: we
// only generate, never scan, the bigger worlds here).
TEST(WorldConfigs, FullInternetGeneratesConsistently) {
  auto config = topo::WorldConfig::full_internet();
  // Shrink heavy knobs so the test stays fast while exercising the same
  // code paths (mega pinning, populations, eyeball assignment).
  config.tail_as_count = 200;
  config.device_scale = 500.0;
  config.mega_scale = 100.0;
  const auto world = topo::generate_world(config);
  EXPECT_GT(world.devices.size(), 10000u);
  EXPECT_EQ(world.ases.size(), 200u + config.mega_ases.size());
  // Every region present; Huawei absent from NA routers.
  std::set<std::string> regions;
  for (const auto& as : world.ases) regions.insert(as.region);
  EXPECT_EQ(regions.size(), 6u);
  // Some devices of each kind.
  std::size_t routers = 0, cpe = 0, servers = 0;
  for (const auto& device : world.devices) {
    routers += device.kind == topo::DeviceKind::kRouter;
    cpe += device.kind == topo::DeviceKind::kCpe;
    servers += device.kind == topo::DeviceKind::kServer;
  }
  EXPECT_GT(routers, 0u);
  EXPECT_GT(cpe, 0u);
  EXPECT_GT(servers, 0u);
}

TEST(WorldConfigs, LoadBalancersAndNatFrontendsExist) {
  auto config = topo::WorldConfig::tiny();
  config.load_balancer_rate = 0.05;  // force plenty in the tiny world
  config.nat_frontend_rate = 0.05;
  const auto world = topo::generate_world(config);
  std::size_t lbs = 0, nats = 0;
  for (const auto& device : world.devices) {
    lbs += !device.backend_engines.empty();
    if (device.kind == topo::DeviceKind::kRouter && device.interfaces.size() >= 2) {
      std::set<std::uint32_t> prefixes;
      for (const auto& itf : device.interfaces)
        if (itf.v4) prefixes.insert(itf.v4->value() >> 16);
      nats += prefixes.size() >= 2;
    }
  }
  EXPECT_GT(lbs, 0u);
  EXPECT_GT(nats, 0u);
}

}  // namespace
}  // namespace snmpv3fp
