// The parallel execution layer's two contracts:
//  1. parallel_for / parallel_map behave like their sequential equivalents
//     (coverage, ordering, exception propagation) at any thread count.
//  2. The full pipeline is bit-identical across thread counts — threads
//     are scheduling only, never part of the experiment configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp {
namespace {

using util::ParallelOptions;

TEST(ParallelFor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  util::parallel_for(0, 0, {.threads = 8},
                     [&](std::size_t) { ++calls; });
  util::parallel_for(5, 5, {.threads = 8},
                     [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  util::parallel_for(0, kCount, {.threads = 8},
                     [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  std::vector<std::atomic<int>> visits(3);
  util::parallel_for(0, 3, {.threads = 16},
                     [&](std::size_t i) { ++visits[i]; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  util::parallel_for(10, 20, {.threads = 1},
                     [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 10);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ChunksPartitionTheRange) {
  constexpr std::size_t kCount = 103;  // not a multiple of the thread count
  std::vector<std::atomic<int>> visits(kCount);
  util::parallel_for_chunks(
      0, kCount, {.threads = 8},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
      });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      util::parallel_for(0, 100, {.threads = 4},
                         [](std::size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool survives a failed batch and accepts new work.
  std::atomic<int> calls{0};
  util::parallel_for(0, 10, {.threads = 4}, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  const auto squares = util::parallel_map<std::size_t>(
      257, ParallelOptions{.threads = 8},
      [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

// ---- pipeline determinism across thread counts ---------------------------

// Mid-size world: denser than tiny() so every parallel stage sees several
// chunks' worth of records, still fast enough for a unit test to run the
// pipeline three times.
topo::WorldConfig mid_size_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 11;
  config.router_scale = 120.0;
  config.mega_scale = 120.0;
  config.device_scale = 1200.0;
  config.tail_as_count = 80;
  return config;
}

core::PipelineResult run_with_threads(std::size_t threads) {
  core::PipelineOptions options;
  options.world = mid_size_world();
  options.parallel.threads = threads;
  return core::run_full_pipeline(options);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target);
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.extra_engines, rb.extra_engines);
  }
}

void expect_same_report(const core::FilterReport& a,
                        const core::FilterReport& b) {
  EXPECT_EQ(a.input, b.input);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.dropped, b.dropped);
}

void expect_identical(const core::PipelineResult& a,
                      const core::PipelineResult& b) {
  expect_same_scan(a.v4_campaign.scan1, b.v4_campaign.scan1);
  expect_same_scan(a.v4_campaign.scan2, b.v4_campaign.scan2);
  expect_same_scan(a.v6_campaign.scan1, b.v6_campaign.scan1);
  expect_same_scan(a.v6_campaign.scan2, b.v6_campaign.scan2);
  EXPECT_EQ(a.v4_campaign.fabric_stats.datagrams_sent,
            b.v4_campaign.fabric_stats.datagrams_sent);
  EXPECT_EQ(a.v4_campaign.fabric_stats.responses_received,
            b.v4_campaign.fabric_stats.responses_received);

  EXPECT_EQ(a.v4_join_stats.overlap, b.v4_join_stats.overlap);
  EXPECT_EQ(a.v4_join_stats.first_only, b.v4_join_stats.first_only);
  EXPECT_EQ(a.v4_join_stats.second_only, b.v4_join_stats.second_only);
  ASSERT_EQ(a.v4_joined.size(), b.v4_joined.size());
  for (std::size_t i = 0; i < a.v4_joined.size(); ++i)
    ASSERT_EQ(a.v4_joined[i].address, b.v4_joined[i].address);

  expect_same_report(a.v4_report, b.v4_report);
  expect_same_report(a.v6_report, b.v6_report);
  ASSERT_EQ(a.v4_records.size(), b.v4_records.size());
  ASSERT_EQ(a.v6_records.size(), b.v6_records.size());

  // Alias sets: same order, same addresses, same representative identity.
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    const auto& sa = a.resolution.sets[i];
    const auto& sb = b.resolution.sets[i];
    ASSERT_EQ(sa.addresses, sb.addresses);
    EXPECT_EQ(sa.engine_id, sb.engine_id);
    EXPECT_EQ(sa.engine_boots, sb.engine_boots);
    EXPECT_EQ(sa.last_reboot, sb.last_reboot);
  }

  // Device records (sets live in the owning resolution; compare by value).
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    const auto& da = a.devices[i];
    const auto& db = b.devices[i];
    ASSERT_EQ(da.set->addresses, db.set->addresses);
    EXPECT_EQ(da.fingerprint.vendor, db.fingerprint.vendor);
    EXPECT_EQ(da.stack, db.stack);
    EXPECT_EQ(da.is_router, db.is_router);
    EXPECT_EQ(da.last_reboot, db.last_reboot);
  }
}

TEST(ParallelDeterminism, PipelineBitIdenticalAcrossThreadCounts) {
  const auto sequential = run_with_threads(1);
  const auto two_threads = run_with_threads(2);
  const auto eight_threads = run_with_threads(8);
  expect_identical(sequential, two_threads);
  expect_identical(sequential, eight_threads);
}

TEST(ParallelDeterminism, AnalysisStagesMatchSequential) {
  // Join / filter / alias on the same campaign: chunked runs must equal
  // the sequential ones record for record.
  const auto result = run_with_threads(1);
  const ParallelOptions eight{.threads = 8};

  core::JoinStats stats_seq, stats_par;
  const auto joined_seq =
      core::join_scans(result.v4_campaign.scan1, result.v4_campaign.scan2,
                       &stats_seq, {.threads = 1});
  const auto joined_par =
      core::join_scans(result.v4_campaign.scan1, result.v4_campaign.scan2,
                       &stats_par, eight);
  EXPECT_EQ(stats_seq.overlap, stats_par.overlap);
  ASSERT_EQ(joined_seq.size(), joined_par.size());
  for (std::size_t i = 0; i < joined_seq.size(); ++i)
    ASSERT_EQ(joined_seq[i].address, joined_par[i].address);

  const core::FilterPipeline pipeline;
  auto records_seq = joined_seq;
  auto records_par = joined_par;
  expect_same_report(pipeline.apply(records_seq, {.threads = 1}),
                     pipeline.apply(records_par, eight));
  ASSERT_EQ(records_seq.size(), records_par.size());

  const auto aliases_seq =
      core::resolve_aliases(records_seq, {}, {.threads = 1});
  const auto aliases_par = core::resolve_aliases(records_par, {}, eight);
  ASSERT_EQ(aliases_seq.sets.size(), aliases_par.sets.size());
  for (std::size_t i = 0; i < aliases_seq.sets.size(); ++i) {
    ASSERT_EQ(aliases_seq.sets[i].addresses, aliases_par.sets[i].addresses);
    EXPECT_EQ(aliases_seq.sets[i].engine_id, aliases_par.sets[i].engine_id);
  }
}

}  // namespace
}  // namespace snmpv3fp
