// Hostile-input hardening: the decode path must reject corrupted bytes
// without throwing, crashing, or reading out of bounds.
//
// A real Internet-wide scan receives truncated datagrams, middlebox-mangled
// payloads and outright garbage on its source port. Every byte sequence —
// valid, mutated or random — must come back from asn1::ber and
// snmp::message as a clean Result failure, never an exception or UB. The
// whole corpus is generated from fixed seeds, so a crash reproduces
// exactly; scripts/check.sh reruns this suite under ASan+UBSan.
#include <gtest/gtest.h>

#include "scan/campaign.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"
#include "snmp/message.hpp"
#include "topo/generator.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp {
namespace {

// Recursively walks every TLV, descending into constructed encodings. The
// reader API itself is the surface under test: any parse error just stops
// the walk.
void walk_tlvs(util::ByteView data, int depth) {
  if (depth > 64) return;  // crafted nesting can be as deep as the payload
  asn1::Reader reader(data);
  while (!reader.at_end()) {
    const auto tlv = reader.read_tlv();
    if (!tlv) return;
    if ((tlv.value().tag & 0x20) != 0)  // constructed: descend
      walk_tlvs(tlv.value().content, depth + 1);
  }
}

// Runs every decoder over one payload. Throwing (or tripping a sanitizer)
// fails the suite; returning a failure Result is the expected outcome.
void decode_all(util::ByteView payload) {
  EXPECT_NO_THROW({
    (void)snmp::V3Message::decode(payload);
    (void)snmp::V2cMessage::decode(payload);
    (void)snmp::peek_version(payload);
    walk_tlvs(payload, 0);
  });
}

// The corpus seeds: one valid message of each shape on the wire.
std::vector<util::Bytes> valid_corpus() {
  std::vector<util::Bytes> corpus;
  const auto request = snmp::make_discovery_request(4242, 4243);
  corpus.push_back(request.encode());

  const snmp::EngineId engine(
      util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x80, 0x01, 0x02, 0x03, 0x04});
  corpus.push_back(
      snmp::make_discovery_report(request, engine, 12, 345678, 9).encode());

  snmp::V2cMessage v2c;
  v2c.community = "public";
  v2c.pdu.type = snmp::PduType::kResponse;
  v2c.pdu.request_id = 77;
  v2c.pdu.bindings.push_back(
      {snmp::kOidSysDescr, snmp::VarValue::string("RouterOS 6.47")});
  corpus.push_back(v2c.encode());
  return corpus;
}

TEST(HostileInput, CorpusRoundTripsBeforeMutation) {
  const auto corpus = valid_corpus();
  ASSERT_EQ(corpus.size(), 3u);
  EXPECT_TRUE(snmp::V3Message::decode(corpus[0]).ok());
  EXPECT_TRUE(snmp::V3Message::decode(corpus[1]).ok());
  EXPECT_TRUE(snmp::V2cMessage::decode(corpus[2]).ok());
}

// The acceptance bar: >= 10k deterministic mutations, zero throws. Each
// iteration derives its RNG from (fault kind, iteration), so a failure
// reproduces from the printed seed alone.
TEST(HostileInput, TenThousandDeterministicMutationsNeverThrow) {
  const auto corpus = valid_corpus();
  constexpr std::size_t kIterationsPerKind = 600;
  std::size_t mutations = 0;
  std::size_t decoded_ok = 0;

  for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind) {
    for (std::size_t i = 0; i < kIterationsPerKind; ++i) {
      const std::uint64_t seed = util::hash_combine(0x4057 + kind, i);
      util::Rng rng(seed);
      const auto& base = corpus[i % corpus.size()];
      const auto mutated =
          sim::apply_fault(base, static_cast<sim::FaultKind>(kind), rng);
      SCOPED_TRACE("kind=" + std::string(to_string(
                       static_cast<sim::FaultKind>(kind))) +
                   " seed=" + std::to_string(seed));
      decode_all(mutated);
      decoded_ok += snmp::V3Message::decode(mutated).ok() ? 1 : 0;
      ++mutations;
    }
  }

  // Random-kind mutations on top, mixing faults across the corpus.
  for (std::size_t i = 0; i < 7000; ++i) {
    util::Rng rng(util::hash_combine(0xf472, i));
    const auto& base = corpus[i % corpus.size()];
    const auto mutated = sim::apply_random_fault(base, rng);
    decode_all(mutated);
    decoded_ok += snmp::V3Message::decode(mutated).ok() ? 1 : 0;
    ++mutations;
  }

  EXPECT_GE(mutations, 10000u);
  // Corruption must actually corrupt: the overwhelming majority of
  // mutated payloads fail decode (a bit flip inside a varbind value can
  // legitimately survive).
  EXPECT_LT(decoded_ok, mutations / 4);
}

TEST(HostileInput, PureGarbageNeverThrows) {
  for (std::size_t i = 0; i < 2000; ++i) {
    util::Rng rng(util::hash_combine(0x6a4b, i));
    util::Bytes garbage(rng.next_below(120), 0);
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    decode_all(garbage);
    EXPECT_FALSE(snmp::V3Message::decode(garbage).ok() &&
                 garbage.size() < 20);  // nothing that small is a message
  }
}

TEST(HostileInput, EveryTruncationIsRejectedCleanly) {
  for (const auto& payload : valid_corpus()) {
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const util::ByteView prefix(payload.data(), len);
      decode_all(prefix);
      // A strict prefix of a valid message can never decode (BER length
      // fields commit the encoder to the full size).
      EXPECT_FALSE(snmp::V3Message::decode(prefix).ok()) << "len=" << len;
    }
  }
}

TEST(HostileInput, OversizedTlvLengthCannotOverrun) {
  const auto corpus = valid_corpus();
  for (std::size_t i = 0; i < 500; ++i) {
    util::Rng rng(util::hash_combine(0x0e4, i));
    const auto mutated = sim::apply_fault(
        corpus[i % corpus.size()], sim::FaultKind::kOversizedTlv, rng);
    decode_all(mutated);
  }

  // Hand-built pathological case: a SEQUENCE claiming 2^32-ish content.
  const util::Bytes huge{0x30, 0x84, 0xff, 0xff, 0xff, 0xff, 0x02, 0x01};
  decode_all(huge);
  asn1::Reader reader(huge);
  EXPECT_FALSE(reader.read_tlv().ok());
}

TEST(HostileInput, MutationSweepIsDeterministic) {
  const auto corpus = valid_corpus();
  const auto sweep = [&corpus]() {
    std::size_t rejected = 0;
    util::Bytes last;
    for (std::size_t i = 0; i < 500; ++i) {
      util::Rng rng(util::hash_combine(0xd37e, i));
      last = sim::apply_random_fault(corpus[i % corpus.size()], rng);
      rejected += snmp::V3Message::decode(last).ok() ? 0 : 1;
    }
    return std::make_pair(rejected, last);
  };
  const auto first = sweep();
  const auto second = sweep();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---- fault injection through the fabric -----------------------------------

TEST(HostileFabric, CorruptedCampaignIsDeterministicAndAccounted) {
  scan::CampaignOptions options;
  options.seed = 31337;
  options.shards = 4;
  options.fabric.faults.probe_corrupt_rate = 0.05;
  options.fabric.faults.response_corrupt_rate = 0.25;

  topo::World world_a = topo::generate_world(topo::WorldConfig::tiny());
  const auto a = scan::run_two_scan_campaign(world_a, options);
  topo::World world_b = topo::generate_world(topo::WorldConfig::tiny());
  options.parallel.threads = 8;  // execution-only: must not change a bit
  const auto b = scan::run_two_scan_campaign(world_b, options);

  // Corruption actually happened and was counted on both sides.
  EXPECT_GT(a.fabric_stats.probes_corrupted, 0u);
  EXPECT_GT(a.fabric_stats.responses_corrupted, 0u);
  EXPECT_GT(a.scan1.undecodable_responses + a.scan2.undecodable_responses,
            0u);

  // The campaign still completes and stays deterministic.
  EXPECT_EQ(a.fabric_stats.probes_corrupted, b.fabric_stats.probes_corrupted);
  EXPECT_EQ(a.fabric_stats.responses_corrupted,
            b.fabric_stats.responses_corrupted);
  EXPECT_EQ(a.scan1.undecodable_responses, b.scan1.undecodable_responses);
  EXPECT_EQ(a.scan2.undecodable_responses, b.scan2.undecodable_responses);
  ASSERT_EQ(a.scan1.records.size(), b.scan1.records.size());
  ASSERT_EQ(a.scan2.records.size(), b.scan2.records.size());
  for (std::size_t i = 0; i < a.scan1.records.size(); ++i) {
    EXPECT_EQ(a.scan1.records[i].target, b.scan1.records[i].target);
    EXPECT_EQ(a.scan1.records[i].engine_id, b.scan1.records[i].engine_id);
  }

  // A corrupted response never becomes a (phantom) record: every record's
  // target is a real device. (Scan 2 records are checked because the
  // campaign leaves the world in the post-churn epoch scan 2 probed.)
  for (const auto& record : a.scan2.records)
    EXPECT_NE(world_a.device_at(record.target), nullptr);
}

TEST(HostileFabric, ZeroFaultRatesAreBitIdenticalToNoFaultConfig) {
  scan::CampaignOptions options;
  options.seed = 4099;
  topo::World world_a = topo::generate_world(topo::WorldConfig::tiny());
  const auto a = scan::run_two_scan_campaign(world_a, options);

  options.fabric.faults.probe_corrupt_rate = 0.0;  // explicit zeros
  options.fabric.faults.response_corrupt_rate = 0.0;
  topo::World world_b = topo::generate_world(topo::WorldConfig::tiny());
  const auto b = scan::run_two_scan_campaign(world_b, options);

  EXPECT_EQ(a.fabric_stats.probes_corrupted, 0u);
  EXPECT_EQ(b.fabric_stats.probes_corrupted, 0u);
  ASSERT_EQ(a.scan1.records.size(), b.scan1.records.size());
  for (std::size_t i = 0; i < a.scan1.records.size(); ++i) {
    EXPECT_EQ(a.scan1.records[i].target, b.scan1.records[i].target);
    EXPECT_EQ(a.scan1.records[i].receive_time, b.scan1.records[i].receive_time);
  }
}

}  // namespace
}  // namespace snmpv3fp
