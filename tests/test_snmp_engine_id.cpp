#include <gtest/gtest.h>

#include "net/registry.hpp"
#include "snmp/engine_id.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::snmp {
namespace {

TEST(EngineId, PaperFigure3Example) {
  // msgAuthoritativeEngineID: 800007c703748ef831db80 — Brocade, MAC format.
  const auto raw = util::from_hex("800007c703748ef831db80");
  ASSERT_TRUE(raw.ok());
  const EngineId id{raw.value()};
  EXPECT_TRUE(id.is_conforming());
  EXPECT_EQ(id.format(), EngineIdFormat::kMac);
  EXPECT_EQ(id.enterprise().value_or(0), 1991u);  // Brocade/Foundry PEN
  ASSERT_TRUE(id.mac().has_value());
  EXPECT_EQ(id.mac()->to_string(), "74:8e:f8:31:db:80");
  EXPECT_EQ(id.to_hex(), "800007c703748ef831db80");
}

TEST(EngineId, PaperConstantBugValue) {
  // §4.3: 0x800000090300000000000000 shared by >181k IPs. The value
  // claims MAC format but carries seven zero bytes — one too many for a
  // MAC — so the strict classifier degrades it to Octets while the
  // enterprise number still identifies Cisco.
  const auto raw = util::from_hex("800000090300000000000000");
  ASSERT_TRUE(raw.ok());
  const EngineId id{raw.value()};
  EXPECT_EQ(id.format(), EngineIdFormat::kOctets);
  EXPECT_EQ(id.enterprise().value_or(0), 9u);  // Cisco
  EXPECT_FALSE(id.mac().has_value());
  ASSERT_TRUE(id.payload().has_value());
  EXPECT_EQ(id.payload()->size(), 7u);
}

TEST(EngineId, MacBuilderRoundTrip) {
  const auto mac = net::MacAddress::from_oui(0x00000c, 0x31db80);
  const auto id = EngineId::make_mac(9, mac);
  EXPECT_EQ(id.size(), 11u);  // 4 enterprise + 1 format + 6 MAC
  EXPECT_EQ(id.format(), EngineIdFormat::kMac);
  EXPECT_EQ(id.enterprise().value_or(0), 9u);
  EXPECT_EQ(id.mac().value(), mac);
  EXPECT_FALSE(id.ipv4().has_value());
  EXPECT_FALSE(id.text().has_value());
}

TEST(EngineId, Ipv4Builder) {
  const auto id = EngineId::make_ipv4(2011, net::Ipv4(10, 1, 2, 3));
  EXPECT_EQ(id.format(), EngineIdFormat::kIpv4);
  EXPECT_EQ(id.ipv4().value().to_string(), "10.1.2.3");
  EXPECT_EQ(id.enterprise().value_or(0), 2011u);
}

TEST(EngineId, Ipv6Builder) {
  const auto addr = net::Ipv6::parse("2001:db8::7").value();
  const auto id = EngineId::make_ipv6(2636, addr);
  EXPECT_EQ(id.format(), EngineIdFormat::kIpv6);
  EXPECT_EQ(id.ipv6().value(), addr);
}

TEST(EngineId, TextBuilder) {
  const auto id = EngineId::make_text(9, "cr1-fra.example.net");
  EXPECT_EQ(id.format(), EngineIdFormat::kText);
  EXPECT_EQ(id.text().value_or(""), "cr1-fra.example.net");
}

TEST(EngineId, OctetsBuilder) {
  const auto id = EngineId::make_octets(4413, util::Bytes{1, 2, 3, 4, 5});
  EXPECT_EQ(id.format(), EngineIdFormat::kOctets);
  ASSERT_TRUE(id.payload().has_value());
  EXPECT_EQ(id.payload()->size(), 5u);
}

TEST(EngineId, NetSnmpScheme) {
  const auto id = EngineId::make_netsnmp(0x0123456789abcdefULL);
  EXPECT_EQ(id.format(), EngineIdFormat::kNetSnmp);
  EXPECT_EQ(id.enterprise().value_or(0), net::kPenNetSnmp);
  // Same payload -> same ID; different payload -> different ID.
  EXPECT_EQ(id, EngineId::make_netsnmp(0x0123456789abcdefULL));
  EXPECT_NE(id, EngineId::make_netsnmp(0xfeeddeadbeefULL));
}

TEST(EngineId, EnterpriseSpecificFormatOfOtherVendor) {
  util::Bytes raw;
  util::append_be(raw, 0x80000009u, 4);  // Cisco, conformance bit set
  raw.push_back(0x81);                    // enterprise-specific format
  raw.push_back(0x42);
  const EngineId id{std::move(raw)};
  EXPECT_EQ(id.format(), EngineIdFormat::kEnterpriseSpecific);
}

TEST(EngineId, NonConforming) {
  const auto raw = util::from_hex("0300e0acf1325a88");  // paper §4.2 example
  ASSERT_TRUE(raw.ok());
  const EngineId id{raw.value()};
  EXPECT_FALSE(id.is_conforming());
  EXPECT_EQ(id.format(), EngineIdFormat::kNonConforming);
  EXPECT_FALSE(id.enterprise().has_value());
  EXPECT_FALSE(id.payload().has_value());
  EXPECT_FALSE(id.mac().has_value());
}

TEST(EngineId, MakeNonConformingClearsTopBit) {
  const auto id =
      EngineId::make_nonconforming(util::Bytes{0xff, 0x01, 0x02, 0x03});
  EXPECT_FALSE(id.is_conforming());
  EXPECT_EQ(id.raw()[0], 0x7f);
}

TEST(EngineId, EmptyAndShort) {
  EXPECT_EQ(EngineId().format(), EngineIdFormat::kEmpty);
  EXPECT_TRUE(EngineId().empty());
  // Conforming bit set but too short for the RFC 3411 structure.
  const EngineId shorty{util::Bytes{0x80, 0x00, 0x01}};
  EXPECT_EQ(shorty.format(), EngineIdFormat::kNonConforming);
}

TEST(EngineId, WrongPayloadLengthDegradesToOctets) {
  // Format byte says MAC but only 4 payload bytes follow.
  util::Bytes raw;
  util::append_be(raw, 0x80000009u, 4);
  raw.push_back(3);
  raw.insert(raw.end(), {1, 2, 3, 4});
  const EngineId id{std::move(raw)};
  EXPECT_EQ(id.format(), EngineIdFormat::kOctets);
  EXPECT_FALSE(id.mac().has_value());
}

TEST(EngineId, OrderingAndHashing) {
  const auto a = EngineId::make_text(9, "a");
  const auto b = EngineId::make_text(9, "b");
  EXPECT_LT(a, b);
  std::hash<EngineId> hasher;
  EXPECT_EQ(hasher(a), hasher(EngineId::make_text(9, "a")));
  EXPECT_NE(hasher(a), hasher(b));
}

TEST(EngineId, FormatNames) {
  EXPECT_EQ(to_string(EngineIdFormat::kMac), "MAC");
  EXPECT_EQ(to_string(EngineIdFormat::kNetSnmp), "Net-SNMP");
  EXPECT_EQ(to_string(EngineIdFormat::kNonConforming), "Non-conforming");
}

}  // namespace
}  // namespace snmpv3fp::snmp
