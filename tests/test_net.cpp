#include <gtest/gtest.h>

#include "net/as_table.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"
#include "net/registry.hpp"

namespace snmpv3fp::net {
namespace {

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

TEST(Ipv4, ParseFormatRoundTrip) {
  const auto addr = Ipv4::parse("192.0.2.1");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().to_string(), "192.0.2.1");
  EXPECT_EQ(addr.value().value(), 0xc0000201u);
  EXPECT_EQ(Ipv4(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(Ipv4, ParseRejectsBadInput) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                          "1..2.3", "1.2.3.4 ", "01x.2.3.4"}) {
    EXPECT_FALSE(Ipv4::parse(bad).ok()) << bad;
  }
}

TEST(Ipv4, BytesRoundTrip) {
  const Ipv4 addr(203, 0, 113, 77);
  const auto bytes = addr.to_bytes();
  ASSERT_EQ(bytes.size(), 4u);
  const auto back = Ipv4::from_bytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), addr);
}

struct RoutabilityCase {
  const char* address;
  bool routable;
};

class Ipv4Routability : public ::testing::TestWithParam<RoutabilityCase> {};

TEST_P(Ipv4Routability, Classification) {
  const auto addr = Ipv4::parse(GetParam().address);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().is_routable(), GetParam().routable)
      << GetParam().address;
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, Ipv4Routability,
    ::testing::Values(RoutabilityCase{"8.8.8.8", true},
                      RoutabilityCase{"203.0.114.1", true},
                      RoutabilityCase{"10.1.2.3", false},
                      RoutabilityCase{"172.16.0.1", false},
                      RoutabilityCase{"172.32.0.1", true},
                      RoutabilityCase{"192.168.255.1", false},
                      RoutabilityCase{"192.169.0.1", true},
                      RoutabilityCase{"127.0.0.1", false},
                      RoutabilityCase{"169.254.1.1", false},
                      RoutabilityCase{"169.253.1.1", true},
                      RoutabilityCase{"224.0.0.1", false},
                      RoutabilityCase{"240.0.0.1", false},
                      RoutabilityCase{"255.255.255.255", false},
                      RoutabilityCase{"0.1.2.3", false},
                      RoutabilityCase{"100.64.0.1", false},
                      RoutabilityCase{"100.128.0.1", true},
                      RoutabilityCase{"192.0.2.55", false},
                      RoutabilityCase{"198.18.0.1", false}));

// ---------------------------------------------------------------------------
// IPv6
// ---------------------------------------------------------------------------

TEST(Ipv6, ParseFull) {
  const auto addr = Ipv6::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().to_string(), "2001:db8::1");
}

struct V6Case {
  const char* input;
  const char* canonical;
};

class Ipv6Canonical : public ::testing::TestWithParam<V6Case> {};

TEST_P(Ipv6Canonical, RFC5952) {
  const auto addr = Ipv6::parse(GetParam().input);
  ASSERT_TRUE(addr.ok()) << GetParam().input;
  EXPECT_EQ(addr.value().to_string(), GetParam().canonical);
  // Re-parse the canonical form: must be the same address.
  const auto again = Ipv6::parse(addr.value().to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), addr.value());
}

INSTANTIATE_TEST_SUITE_P(
    Forms, Ipv6Canonical,
    ::testing::Values(V6Case{"::", "::"}, V6Case{"::1", "::1"},
                      V6Case{"2001:db8::", "2001:db8::"},
                      V6Case{"2001:db8::1:0:0:1", "2001:db8::1:0:0:1"},
                      V6Case{"2001:0:0:1::1", "2001:0:0:1::1"},
                      V6Case{"fe80:0:0:0:0:0:0:7", "fe80::7"},
                      V6Case{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
                      V6Case{"0:0:1:0:0:0:1:0", "0:0:1::1:0"}));

TEST(Ipv6, ParseRejectsBadInput) {
  for (const char* bad :
       {"", ":::", "1:2:3", "1:2:3:4:5:6:7:8:9", "2001::db8::1", "g::1",
        "12345::", "1:"}) {
    EXPECT_FALSE(Ipv6::parse(bad).ok()) << bad;
  }
}

TEST(Ipv6, Routability) {
  EXPECT_TRUE(Ipv6::parse("2001:db8::1").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("::").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("::1").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("fe80::1").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("fc00::1").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("fd12::1").value().is_routable());
  EXPECT_FALSE(Ipv6::parse("ff02::1").value().is_routable());
}

TEST(IpAddress, MixedOrderingAndHash) {
  const IpAddress v4 = Ipv4(1, 2, 3, 4);
  const IpAddress v6 = Ipv6::parse("::1").value();
  EXPECT_LT(v4, v6);  // all v4 sort before all v6
  EXPECT_TRUE(v4.is_v4());
  EXPECT_TRUE(v6.is_v6());
  const auto parsed = IpAddress::parse("2001:db8::5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().is_v6());
  std::hash<IpAddress> hasher;
  EXPECT_NE(hasher(v4), hasher(v6));
  EXPECT_EQ(hasher(v4), hasher(IpAddress(Ipv4(1, 2, 3, 4))));
}

TEST(Prefix4, ContainsAndAt) {
  const auto prefix = Prefix4::parse("10.20.0.0/16");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value().size(), 65536u);
  EXPECT_TRUE(prefix.value().contains(Ipv4(10, 20, 255, 255)));
  EXPECT_FALSE(prefix.value().contains(Ipv4(10, 21, 0, 0)));
  EXPECT_EQ(prefix.value().at(257).to_string(), "10.20.1.1");
  EXPECT_EQ(prefix.value().to_string(), "10.20.0.0/16");
}

TEST(Prefix4, CanonicalizesHostBits) {
  const Prefix4 prefix(Ipv4(10, 20, 30, 40), 16);
  EXPECT_EQ(prefix.base().to_string(), "10.20.0.0");
}

TEST(Prefix4, ParseRejectsBadInput) {
  EXPECT_FALSE(Prefix4::parse("10.0.0.0").ok());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/33").ok());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/x").ok());
}

// ---------------------------------------------------------------------------
// MAC + registries
// ---------------------------------------------------------------------------

TEST(Mac, ParseFormatOui) {
  const auto mac = MacAddress::parse("74:8e:f8:31:db:80");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac.value().to_string(), "74:8e:f8:31:db:80");
  EXPECT_EQ(mac.value().oui(), 0x748ef8u);
  EXPECT_EQ(mac.value().nic(), 0x31db80u);
  EXPECT_FALSE(mac.value().is_multicast());
  EXPECT_FALSE(mac.value().is_locally_administered());
}

TEST(Mac, FromOui) {
  const auto mac = MacAddress::from_oui(0x00000c, 0xabcdef);
  EXPECT_EQ(mac.to_string(), "00:00:0c:ab:cd:ef");
  EXPECT_TRUE(MacAddress::parse("02:00:00:00:00:01").value()
                  .is_locally_administered());
  EXPECT_TRUE(MacAddress::parse("01:00:5e:00:00:01").value().is_multicast());
}

TEST(OuiRegistry, PaperBrocadeExample) {
  // Figure 3 of the paper: 74:8e:f8 = Brocade Communications Systems.
  const auto vendor = OuiRegistry::embedded().vendor_of(0x748ef8);
  ASSERT_TRUE(vendor.has_value());
  EXPECT_EQ(*vendor, "Brocade");
}

TEST(OuiRegistry, KnownAndUnknown) {
  const auto& registry = OuiRegistry::embedded();
  EXPECT_EQ(registry.vendor_of(0x00000c).value_or(""), "Cisco");
  EXPECT_EQ(registry.vendor_of(0x00e0fc).value_or(""), "Huawei");
  EXPECT_EQ(registry.vendor_of(0x000000).value_or(""), "Xerox");
  EXPECT_FALSE(registry.vendor_of(0xdeadbe).has_value());
  EXPECT_GE(registry.ouis_of("Cisco").size(), 4u);
  EXPECT_TRUE(registry.ouis_of("NoSuchVendor").empty());
}

TEST(EnterpriseRegistry, WellKnownNumbers) {
  const auto& registry = EnterpriseRegistry::embedded();
  EXPECT_EQ(registry.vendor_of(9).value_or(""), "Cisco");
  EXPECT_EQ(registry.vendor_of(2636).value_or(""), "Juniper");
  EXPECT_EQ(registry.vendor_of(8072).value_or(""), "Net-SNMP");
  EXPECT_FALSE(registry.vendor_of(4242424).has_value());
  EXPECT_EQ(registry.pen_of("Huawei").value_or(0), 2011u);
  EXPECT_FALSE(registry.pen_of("NoSuchVendor").has_value());
}

// ---------------------------------------------------------------------------
// AS table
// ---------------------------------------------------------------------------

TEST(AsTable, LookupBothFamilies) {
  AsTable table;
  table.add_v4(Prefix4(Ipv4(64, 1, 0, 0), 16), {64512, "NA"});
  table.add_v4(Prefix4(Ipv4(128, 0, 0, 0), 16), {64513, "EU"});
  table.add_v6({0x2001, 0x1234}, {64513, "EU"});

  const auto na = table.lookup(IpAddress(Ipv4(64, 1, 200, 3)));
  ASSERT_TRUE(na.has_value());
  EXPECT_EQ(na->asn, 64512u);
  EXPECT_EQ(na->region, "NA");

  EXPECT_FALSE(table.lookup(IpAddress(Ipv4(64, 2, 0, 1))).has_value());
  EXPECT_FALSE(table.lookup(IpAddress(Ipv4(10, 0, 0, 1))).has_value());

  const auto v6 = table.lookup(
      IpAddress(Ipv6::parse("2001:1234::cafe").value()));
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->asn, 64513u);
  EXPECT_FALSE(
      table.lookup(IpAddress(Ipv6::parse("2001:9999::1").value())).has_value());
}

}  // namespace
}  // namespace snmpv3fp::net
