#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "net/registry.hpp"

namespace snmpv3fp::core {
namespace {

using snmp::EngineId;

EngineId engine(std::uint32_t n) {
  return EngineId::make_mac(net::kPenCisco,
                            net::MacAddress::from_oui(0x00000c, n));
}

JoinedRecord record(std::uint32_t host, const EngineId& id,
                    std::uint32_t boots = 5,
                    util::VTime last_reboot = -10 * util::kDay) {
  JoinedRecord r;
  r.address = net::Ipv4(0x08000000u + host);
  r.first.target = r.address;
  r.first.engine_id = id;
  r.first.engine_boots = boots;
  r.first.receive_time = 10 * util::kDay;
  r.first.engine_time = static_cast<std::uint32_t>(
      util::to_seconds(r.first.receive_time - last_reboot));
  r.second = r.first;
  return r;
}

TEST(Analytics, IpsPerEngineId) {
  const std::vector<JoinedRecord> records = {
      record(1, engine(1)), record(2, engine(1)), record(3, engine(1)),
      record(4, engine(2))};
  const auto ecdf = ips_per_engine_id(records);
  EXPECT_EQ(ecdf.size(), 2u);  // two unique engine IDs
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
}

TEST(Analytics, FormatSharesOverUniqueIds) {
  std::vector<JoinedRecord> records = {
      record(1, engine(1)), record(2, engine(1)),  // duplicate engine ID
      record(3, EngineId::make_netsnmp(0x42)),
      record(4, EngineId::make_text(9, "r1"))};
  const auto tally = engine_id_format_shares(records);
  EXPECT_EQ(tally.total(), 3u);  // duplicates collapse
  EXPECT_EQ(tally.get("MAC"), 1u);
  EXPECT_EQ(tally.get("Net-SNMP"), 1u);
  EXPECT_EQ(tally.get("Text"), 1u);
}

TEST(Analytics, HammingWeightsByFormat) {
  std::vector<JoinedRecord> records = {
      record(1, EngineId::make_octets(9, util::Bytes{0xff, 0xff})),
      record(2, EngineId::make_octets(9, util::Bytes{0x00, 0x00})),
      record(3, engine(1))};
  const auto weights =
      relative_hamming_weights(records, snmp::EngineIdFormat::kOctets);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0] + weights[1], 1.0);  // 1.0 and 0.0
}

TEST(Analytics, TopSharedEngineIds) {
  std::vector<JoinedRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i)
    records.push_back(record(i, engine(1), 5,
                             -static_cast<util::VTime>(i) * 100 * util::kDay));
  records.push_back(record(100, engine(2)));
  const auto top = top_shared_engine_ids(records, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].engine_id, engine(1));
  EXPECT_EQ(top[0].address_count, 10u);
  // Reboot spread across years marks the reuse (paper Figure 7).
  EXPECT_GT(top[0].last_reboots.max() - top[0].last_reboots.min(), 365.0);
}

TEST(Analytics, RebootDeltaEcdfWithFilter) {
  auto a = record(1, engine(1));
  a.second.engine_time += 30;  // 30 s drift
  auto b = record(2, engine(2));
  const std::vector<JoinedRecord> records = {a, b};
  const auto all = reboot_delta_ecdf(records);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all.fraction_at_most(10.0), 0.5);

  AddressSet only{b.address};
  const auto filtered = reboot_delta_ecdf(records, &only);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered.fraction_at_most(1.0), 1.0);
}

TEST(Analytics, TupleUniqueness) {
  // Two devices with identical (boots, last reboot): their tuples collide.
  const util::VTime reboot = -5 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(1), 7, reboot), record(2, engine(2), 7, reboot),
      record(3, engine(3), 7, -6 * util::kDay)};
  const auto counts = engine_ids_per_tuple(records);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

// ---------------------------------------------------------------------------
// Device annotation + rollups
// ---------------------------------------------------------------------------

class RollupTest : public ::testing::Test {
 protected:
  RollupTest() {
    as_table_.add_v4(net::Prefix4(net::Ipv4(8, 0, 0, 0), 8), {100, "EU"});
    as_table_.add_v4(net::Prefix4(net::Ipv4(9, 0, 0, 0), 8), {200, "NA"});

    // AS 100: 3 Cisco + 1 Huawei routers; AS 200: 2 Cisco routers.
    std::vector<JoinedRecord> records;
    std::uint32_t host = 1;
    const auto add_router = [&](std::uint8_t first_octet, std::uint32_t pen,
                                std::uint32_t oui) {
      JoinedRecord r = record(host, EngineId::make_mac(
                                        pen, net::MacAddress::from_oui(
                                                 oui, host)));
      r.address = net::Ipv4(first_octet, 0, 0, static_cast<std::uint8_t>(host));
      r.first.target = r.address;
      r.second.target = r.address;
      ++host;
      records.push_back(r);
      router_addresses_.insert(r.address);
    };
    for (int i = 0; i < 3; ++i) add_router(8, net::kPenCisco, 0x00000c);
    add_router(8, net::kPenHuawei, 0x00e0fc);
    for (int i = 0; i < 2; ++i) add_router(9, net::kPenCisco, 0x00000c);
    // One non-router device in AS 100.
    records.push_back(record(99, EngineId::make_netsnmp(7)));

    resolution_ = resolve_aliases(records);
    devices_ = annotate_devices(resolution_, as_table_, router_addresses_);
  }

  net::AsTable as_table_;
  AddressSet router_addresses_;
  AliasResolution resolution_;
  std::vector<DeviceRecord> devices_;
};

TEST_F(RollupTest, AnnotationBasics) {
  EXPECT_EQ(devices_.size(), 7u);
  std::size_t routers = 0;
  for (const auto& device : devices_) routers += device.is_router;
  EXPECT_EQ(routers, 6u);
}

TEST_F(RollupTest, VendorPopularityCounts) {
  const auto all = vendor_popularity(devices_, /*routers_only=*/false);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().vendor, "Cisco");
  EXPECT_EQ(all.front().total(), 5u);
  const auto routers = vendor_popularity(devices_, /*routers_only=*/true);
  std::size_t total = 0;
  for (const auto& entry : routers) total += entry.total();
  EXPECT_EQ(total, 6u);
}

TEST_F(RollupTest, PerAsRollups) {
  const auto rollups = rollup_by_as(devices_);
  ASSERT_EQ(rollups.size(), 2u);
  const auto& eu = rollups[0].asn == 100 ? rollups[0] : rollups[1];
  const auto& na = rollups[0].asn == 200 ? rollups[0] : rollups[1];
  EXPECT_EQ(eu.routers, 4u);
  EXPECT_EQ(eu.distinct_vendors(), 2u);
  EXPECT_DOUBLE_EQ(eu.vendor_dominance(), 0.75);
  EXPECT_EQ(na.routers, 2u);
  EXPECT_DOUBLE_EQ(na.vendor_dominance(), 1.0);
}

TEST_F(RollupTest, RegionalShares) {
  const auto rows = vendor_share_by_region(devices_);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "EU");  // more routers
  EXPECT_DOUBLE_EQ(rows[0].vendor_tally.fraction("Huawei"), 0.25);
}

TEST_F(RollupTest, TopAsLabels) {
  const auto rows = vendor_share_top_ases(devices_, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "EU-1");
  EXPECT_EQ(rows[1].label, "NA-1");
  EXPECT_GE(rows[0].routers, rows[1].routers);
}

TEST_F(RollupTest, UptimeEcdf) {
  const auto uptime = uptime_days(devices_, /*routers_only=*/true,
                                  10 * util::kDay);
  EXPECT_EQ(uptime.size(), 6u);
  // All fixtures rebooted 10 days before the 10-day scan time = 20 days.
  EXPECT_NEAR(uptime.median(), 20.0, 0.1);
}

TEST_F(RollupTest, AsCoverage) {
  std::vector<net::IpAddress> dataset;
  for (const auto& address : router_addresses_) dataset.push_back(address);
  dataset.push_back(net::IpAddress(net::Ipv4(8, 0, 0, 250)));  // unresponsive
  AddressSet responsive = router_addresses_;
  const auto coverage = as_coverage(dataset, responsive, as_table_);
  ASSERT_EQ(coverage.size(), 2u);
  // AS 100 has 5 dataset IPs, 4 responsive; AS 200 has 2/2.
  for (const auto& [total, cov] : coverage) {
    if (total == 5)
      EXPECT_DOUBLE_EQ(cov, 0.8);
    else
      EXPECT_DOUBLE_EQ(cov, 1.0);
  }
}

TEST_F(RollupTest, StackClassNames) {
  EXPECT_EQ(to_string(StackClass::kDualStack), "Dual-Stack");
  EXPECT_EQ(to_string(StackClass::kV4Only), "IPv4 Only");
}

}  // namespace
}  // namespace snmpv3fp::core
