#include <gtest/gtest.h>

#include <set>

#include "core/alias.hpp"
#include "util/rng.hpp"
#include "net/registry.hpp"

namespace snmpv3fp::core {
namespace {

using snmp::EngineId;

JoinedRecord record(std::uint32_t host, const EngineId& id,
                    std::uint32_t boots, util::VTime last_reboot,
                    bool v6 = false) {
  JoinedRecord r;
  if (v6) {
    std::array<std::uint16_t, 8> groups{0x2001, 0xdb8, 0, 0, 0, 0, 0,
                                        static_cast<std::uint16_t>(host)};
    r.address = net::Ipv6::from_groups(groups);
  } else {
    r.address = net::Ipv4(0x08000000u + host);
  }
  r.first.target = r.address;
  r.first.engine_id = id;
  r.first.engine_boots = boots;
  r.first.receive_time = 10 * util::kDay;
  r.first.engine_time = static_cast<std::uint32_t>(
      util::to_seconds(r.first.receive_time - last_reboot));
  r.second = r.first;
  r.second.receive_time = 16 * util::kDay;
  r.second.engine_time = static_cast<std::uint32_t>(
      util::to_seconds(r.second.receive_time - last_reboot));
  return r;
}

EngineId engine(std::uint32_t n) {
  return EngineId::make_mac(net::kPenCisco,
                            net::MacAddress::from_oui(0x00000c, n));
}

TEST(Alias, GroupsByFullKey) {
  const util::VTime reboot = -30 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, reboot), record(2, engine(7), 5, reboot),
      record(3, engine(7), 5, reboot), record(4, engine(8), 5, reboot)};
  const auto resolution = resolve_aliases(records);
  EXPECT_EQ(resolution.sets.size(), 2u);
  EXPECT_EQ(resolution.non_singleton_count(), 1u);
  EXPECT_EQ(resolution.ips_in_non_singletons(), 3u);
  EXPECT_EQ(resolution.total_ips(), 4u);
}

TEST(Alias, OutputIsAPartition) {
  std::vector<JoinedRecord> records;
  for (std::uint32_t i = 0; i < 100; ++i)
    records.push_back(record(i, engine(i / 4), 3 + i % 3, -i * util::kDay));
  const auto resolution = resolve_aliases(records);
  std::set<net::IpAddress> seen;
  std::size_t total = 0;
  for (const auto& set : resolution.sets) {
    for (const auto& address : set.addresses) {
      EXPECT_TRUE(seen.insert(address).second) << "address in two sets";
      ++total;
    }
  }
  EXPECT_EQ(total, records.size());
}

TEST(Alias, SameEngineIdDifferentBootsSplits) {
  const util::VTime reboot = -30 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, reboot), record(2, engine(7), 6, reboot)};
  const auto resolution = resolve_aliases(records);
  EXPECT_EQ(resolution.sets.size(), 2u);
}

TEST(Alias, SameEngineIdDistantRebootSplits) {
  // The constant-engine-ID bug scenario: same engine ID, reboots years
  // apart. The tuple keeps the devices separate.
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, -30 * util::kDay),
      record(2, engine(7), 5, -800 * util::kDay)};
  const auto resolution = resolve_aliases(records);
  EXPECT_EQ(resolution.sets.size(), 2u);

  AliasOptions id_only;
  id_only.engine_id_only = true;
  const auto merged = resolve_aliases(records, id_only);
  EXPECT_EQ(merged.sets.size(), 1u);  // the ablation wrongly merges them
}

TEST(Alias, RebootWithinBinMerges) {
  // Two records 5 s apart in derived last reboot: same 20 s bin (usually).
  const util::VTime reboot = -30 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, reboot),
      record(2, engine(7), 5, reboot + 5 * util::kSecond)};
  AliasOptions options;
  options.match = RebootMatch::kDivide20;
  const auto resolution = resolve_aliases(records, options);
  // 5 s apart lands in the same bin unless the pair straddles a boundary;
  // with reboot at a day boundary (multiple of 20 s) they share a bin.
  EXPECT_EQ(resolution.sets.size(), 1u);
}

TEST(Alias, ExactMatchingFragmentsWhatBinningMerges) {
  const util::VTime reboot = -30 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, reboot),
      record(2, engine(7), 5, reboot + 5 * util::kSecond)};
  AliasOptions exact;
  exact.match = RebootMatch::kExact;
  EXPECT_EQ(resolve_aliases(records, exact).sets.size(), 2u);
}

// Table 3's monotonicity: coarser matching never yields more sets.
TEST(Alias, CoarserBinningYieldsFewerOrEqualSets) {
  std::vector<JoinedRecord> records;
  util::Rng rng(77);
  for (std::uint32_t i = 0; i < 400; ++i) {
    const util::VTime reboot =
        -static_cast<util::VTime>(rng.next_below(90)) * util::kDay -
        static_cast<util::VTime>(rng.next_below(40)) * util::kSecond;
    records.push_back(record(i, engine(i / 5), 4, reboot));
  }
  AliasOptions exact, divide20;
  exact.match = RebootMatch::kExact;
  divide20.match = RebootMatch::kDivide20;
  const auto exact_sets = resolve_aliases(records, exact).sets.size();
  const auto binned_sets = resolve_aliases(records, divide20).sets.size();
  EXPECT_GE(exact_sets, binned_sets);
}

TEST(Alias, FirstScanOnlyKeysIgnoreSecondScan) {
  auto a = record(1, engine(7), 5, -30 * util::kDay);
  auto b = record(2, engine(7), 5, -30 * util::kDay);
  b.second.engine_boots = 9;  // differs only in scan 2
  const std::vector<JoinedRecord> records = {a, b};
  AliasOptions first_only;
  first_only.use_both_scans = false;
  EXPECT_EQ(resolve_aliases(records, first_only).sets.size(), 1u);
  AliasOptions both;
  both.use_both_scans = true;
  EXPECT_EQ(resolve_aliases(records, both).sets.size(), 2u);
}

TEST(Alias, DualStackMergeAcrossFamilies) {
  const util::VTime reboot = -10 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(7), 5, reboot), record(2, engine(7), 5, reboot),
      record(3, engine(7), 5, reboot, /*v6=*/true)};
  const auto resolution = resolve_aliases(records);
  ASSERT_EQ(resolution.sets.size(), 1u);
  EXPECT_TRUE(resolution.sets[0].dual_stack());
  EXPECT_EQ(resolution.sets[0].v4_count(), 2u);
  EXPECT_EQ(resolution.sets[0].v6_count(), 1u);

  const auto breakdown = breakdown_by_stack(resolution);
  EXPECT_EQ(breakdown.dual_sets, 1u);
  EXPECT_EQ(breakdown.dual_ips, 3u);
  EXPECT_EQ(breakdown.v4_only_sets, 0u);
}

TEST(Alias, BreakdownCountsStacks) {
  const util::VTime reboot = -10 * util::kDay;
  const std::vector<JoinedRecord> records = {
      record(1, engine(1), 5, reboot),
      record(2, engine(2), 5, reboot),
      record(3, engine(2), 5, reboot),
      record(4, engine(3), 5, reboot, /*v6=*/true),
  };
  const auto breakdown = breakdown_by_stack(resolve_aliases(records));
  EXPECT_EQ(breakdown.v4_only_sets, 2u);
  EXPECT_EQ(breakdown.v6_only_sets, 1u);
  EXPECT_EQ(breakdown.dual_sets, 0u);
  EXPECT_EQ(breakdown.v4_only_non_singleton, 1u);
  EXPECT_EQ(breakdown.v4_only_ips_nonsingleton, 2u);
}

TEST(Alias, SetsCarryRepresentativeMetadata) {
  const util::VTime reboot = -10 * util::kDay;
  const std::vector<JoinedRecord> records = {record(1, engine(7), 42, reboot)};
  const auto resolution = resolve_aliases(records);
  ASSERT_EQ(resolution.sets.size(), 1u);
  EXPECT_EQ(resolution.sets[0].engine_boots, 42u);
  EXPECT_EQ(resolution.sets[0].engine_id, engine(7));
  // Representative last reboot is within a second of the truth.
  EXPECT_NEAR(util::to_seconds(resolution.sets[0].last_reboot),
              util::to_seconds(reboot), 1.0);
}

TEST(Alias, EmptyInputYieldsEmptyResolution) {
  const auto resolution = resolve_aliases(std::span<const JoinedRecord>{});
  EXPECT_TRUE(resolution.sets.empty());
  EXPECT_EQ(resolution.total_ips(), 0u);
  EXPECT_DOUBLE_EQ(resolution.mean_ips_per_non_singleton(), 0.0);
}

TEST(Alias, StrategyNames) {
  EXPECT_EQ(to_string(RebootMatch::kExact), "Exact");
  EXPECT_EQ(to_string(RebootMatch::kDivide20), "Divide by 20");
}

}  // namespace
}  // namespace snmpv3fp::core
