#include <gtest/gtest.h>

#include "core/join.hpp"
#include "scan/campaign.hpp"
#include "topo/datasets.hpp"
#include "scan/prober.hpp"
#include "sim/fabric.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::scan {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : world_(topo::generate_world(topo::WorldConfig::tiny())) {}

  topo::World world_;
};

TEST_F(ScanTest, ProbeRecordsMatchAgents) {
  sim::FabricConfig fabric_config;
  fabric_config.probe_loss = 0.0;
  fabric_config.response_loss = 0.0;
  sim::Fabric fabric(world_, fabric_config);
  Prober prober(fabric, {net::Ipv4(198, 51, 100, 7), 4444});

  const auto targets = world_.addresses(net::Family::kIpv4);
  ProbeConfig config;
  config.seed = 42;
  const auto result = prober.run(targets, config, 0);

  EXPECT_EQ(result.targets_probed, targets.size());
  EXPECT_GT(result.responsive(), 0u);
  EXPECT_LT(result.responsive(), targets.size());
  EXPECT_EQ(result.probe_bytes, 60u);

  // Every record corresponds to a device that really answers, with the
  // device's true engine state at the (virtual) probe time.
  for (const auto& record : result.records) {
    const auto* device = world_.device_at(record.target);
    ASSERT_NE(device, nullptr) << record.target.to_string();
    EXPECT_TRUE(device->snmpv3_enabled);
    if (!device->empty_engine_id_bug && !device->zero_time_bug &&
        !device->future_time_bug && device->backend_engines.empty()) {
      EXPECT_EQ(record.engine_id, device->engine_id);
    }
    EXPECT_GE(record.receive_time, record.send_time);
  }
}

TEST_F(ScanTest, NoLossMeansAllEnabledDevicesRespond) {
  sim::FabricConfig fabric_config;
  fabric_config.probe_loss = 0.0;
  fabric_config.response_loss = 0.0;
  sim::Fabric fabric(world_, fabric_config);
  Prober prober(fabric, {net::Ipv4(198, 51, 100, 7), 4444});
  const auto result =
      prober.run(world_.addresses(net::Family::kIpv4), {}, 0);

  std::size_t expected = 0;
  for (const auto& device : world_.devices) {
    if (!device.snmpv3_enabled) continue;
    for (const auto& itf : device.interfaces) expected += itf.v4.has_value();
  }
  EXPECT_EQ(result.responsive(), expected);
}

TEST_F(ScanTest, LastRebootDerivation) {
  ScanRecord record;
  record.receive_time = 100 * util::kDay;
  record.engine_time = 86400;  // one day of uptime
  EXPECT_EQ(record.last_reboot(), 99 * util::kDay);
}

TEST_F(ScanTest, UniqueEngineIdCounting) {
  ScanResult result;
  ScanRecord a, b, c;
  a.engine_id = snmp::EngineId(util::Bytes{0x80, 1, 2, 3, 4});
  b.engine_id = a.engine_id;
  c.engine_id = snmp::EngineId(util::Bytes{0x80, 9, 9, 9, 9});
  result.records = {a, b, c};
  EXPECT_EQ(result.unique_engine_ids(), 2u);
}

TEST_F(ScanTest, TwoScanCampaignJoins) {
  CampaignOptions options;
  options.seed = 77;
  options.fabric.probe_loss = 0.0;
  options.fabric.response_loss = 0.0;
  const auto pair = run_two_scan_campaign(world_, options);
  EXPECT_GT(pair.scan1.responsive(), 0u);
  EXPECT_GT(pair.scan2.responsive(), 0u);
  EXPECT_EQ(pair.scan2.start_time - pair.scan1.start_time, 6 * util::kDay);

  core::JoinStats stats;
  const auto joined = core::join_scans(pair.scan1, pair.scan2, &stats);
  EXPECT_EQ(stats.overlap, joined.size());
  EXPECT_EQ(stats.overlap + stats.first_only, pair.scan1.responsive());
  EXPECT_EQ(stats.overlap + stats.second_only, pair.scan2.responsive());
  // Churn means overlap < full, but most addresses answer both scans.
  EXPECT_GT(stats.overlap, pair.scan1.responsive() / 2);
  EXPECT_GT(stats.first_only, 0u);

  // Engine time advanced ~6 days for consistent non-rebooted devices
  // (within a generous skew envelope: CPE clocks drift by design).
  std::size_t checked = 0;
  for (const auto& join : joined) {
    if (!join.engine_ids_match() || !join.boots_match()) continue;
    const auto delta = static_cast<std::int64_t>(join.second.engine_time) -
                       static_cast<std::int64_t>(join.first.engine_time);
    EXPECT_GT(delta, 5 * 86400);
    EXPECT_LT(delta, 7 * 86400);
    if (++checked == 50) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(ScanTest, ExplicitTargetListIsrespected) {
  CampaignOptions options;
  options.family = net::Family::kIpv6;
  options.targets = topo::export_hitlist_v6(world_, 1);
  options.scan_gap = util::kDay;
  const auto pair = run_two_scan_campaign(world_, options);
  EXPECT_EQ(pair.scan1.targets_probed, options.targets->size());
  for (const auto& record : pair.scan1.records) {
    EXPECT_TRUE(record.target.is_v6());
  }
}

TEST_F(ScanTest, JoinIsDeterministicOrder) {
  CampaignOptions options;
  options.seed = 5;
  auto world_copy = world_;
  const auto pair = run_two_scan_campaign(world_copy, options);
  const auto joined1 = core::join_scans(pair.scan1, pair.scan2);
  const auto joined2 = core::join_scans(pair.scan1, pair.scan2);
  ASSERT_EQ(joined1.size(), joined2.size());
  for (std::size_t i = 0; i < joined1.size(); ++i)
    EXPECT_EQ(joined1[i].address, joined2[i].address);
  EXPECT_TRUE(std::is_sorted(joined1.begin(), joined1.end(),
                             [](const auto& a, const auto& b) {
                               return a.address < b.address;
                             }));
}

}  // namespace
}  // namespace snmpv3fp::scan
