#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::util {
namespace {

// ---------------------------------------------------------------------------
// bytes
// ---------------------------------------------------------------------------

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8};
  EXPECT_EQ(to_hex(data), "800007c703748ef8");
  const auto parsed = from_hex(to_hex(data));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), data);
}

TEST(Bytes, HexColonFormat) {
  const Bytes mac = {0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80};
  EXPECT_EQ(to_hex_colon(mac), "74:8e:f8:31:db:80");
  const auto parsed = from_hex("74:8e:f8:31:db:80");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), mac);
}

TEST(Bytes, FromHexRejectsGarbage) {
  EXPECT_FALSE(from_hex("xyz").ok());
  EXPECT_FALSE(from_hex("abc").ok());  // odd digit count
  EXPECT_TRUE(from_hex("").ok());
  EXPECT_TRUE(from_hex("").value().empty());
}

TEST(Bytes, BigEndianRoundTrip) {
  Bytes out;
  append_be(out, 0x0123456789abcdefULL, 8);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(read_be(out), 0x0123456789abcdefULL);
  Bytes short_out;
  append_be(short_out, 0xbeef, 2);
  EXPECT_EQ(read_be(short_out), 0xbeefULL);
}

TEST(Bytes, HammingWeight) {
  EXPECT_EQ(hamming_weight(Bytes{}), 0u);
  EXPECT_EQ(hamming_weight(Bytes{0xff}), 8u);
  EXPECT_EQ(hamming_weight(Bytes{0x0f, 0xf0}), 8u);
  EXPECT_DOUBLE_EQ(relative_hamming_weight(Bytes{0x0f, 0xf0}), 0.5);
  EXPECT_DOUBLE_EQ(relative_hamming_weight(Bytes{}), 0.0);
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / static_cast<double>(counts[0]),
              3.0, 0.25);
}

TEST(Rng, ZipfIsHeavyTailed) {
  Rng rng(19);
  std::size_t first = 0, top10 = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::size_t k = rng.zipf(100, 1.2);
    ASSERT_LT(k, 100u);
    first += k == 0;
    top10 += k < 10;
  }
  // For s=1.2, n=100: P(0) ~ 1/H_{100,1.2} ~ 0.21; top-10 holds a majority.
  EXPECT_GT(first, 1700u);
  EXPECT_GT(top10, 5000u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(23);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Ecdf, BasicQueries) {
  Ecdf ecdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(100.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 4.0);
  EXPECT_DOUBLE_EQ(ecdf.median(), 2.0);
}

TEST(Ecdf, QuantileMatchesFraction) {
  Ecdf ecdf;
  for (int i = 1; i <= 100; ++i) ecdf.add(i);
  ecdf.finalize();
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.01), 1.0);
}

TEST(Ecdf, EmptyIsSafe) {
  const Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1.0), 0.0);
  EXPECT_TRUE(ecdf.curve().empty());
}

TEST(Ecdf, CurveIsMonotonic) {
  Ecdf ecdf;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) ecdf.add(rng.uniform(0, 1000));
  ecdf.finalize();
  const auto curve = ecdf.curve(25);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(Histogram, BinsAndClamping) {
  Histogram histogram(0.0, 1.0, 10);
  histogram.add(0.05);
  histogram.add(0.95);
  histogram.add(-5.0);  // clamps to first bin
  histogram.add(5.0);   // clamps to last bin
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(histogram.bin_fraction(0), 0.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Tally, CountsAndSorting) {
  Tally tally;
  tally.add("cisco", 5);
  tally.add("huawei", 3);
  tally.add("cisco", 2);
  EXPECT_EQ(tally.get("cisco"), 7u);
  EXPECT_EQ(tally.total(), 10u);
  EXPECT_DOUBLE_EQ(tally.fraction("huawei"), 0.3);
  EXPECT_DOUBLE_EQ(tally.fraction("nokia"), 0.0);
  const auto sorted = tally.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted.front().first, "cisco");
}

// ---------------------------------------------------------------------------
// strings / table / vclock
// ---------------------------------------------------------------------------

TEST(Strings, Split) {
  const auto parts = split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", '.').size(), 1u);
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("EU"), "eu");
  EXPECT_TRUE(starts_with("xe-0-0-1.r1", "xe-"));
  EXPECT_TRUE(ends_with("r1.example.net", ".net"));
}

TEST(Table, FormattersAndRendering) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_compact(12500000.0), "12.5M");
  EXPECT_EQ(fmt_compact(31800.0), "31.8k");
  EXPECT_EQ(fmt_percent(0.1234), "12.3%");

  TablePrinter table({"a", "bb"});
  table.add_row({"1", "2"});
  const auto rendered = table.render();
  EXPECT_NE(rendered.find("| a "), std::string::npos);
  EXPECT_NE(rendered.find("| 1 "), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"a,b", "q\"q"});
  const auto rendered = csv.render();
  EXPECT_NE(rendered.find("\"a,b\""), std::string::npos);
  EXPECT_NE(rendered.find("\"q\"\"q\""), std::string::npos);
}

TEST(VClock, ArithmeticAndFormatting) {
  EXPECT_EQ(from_seconds(1.5), 1500000);
  EXPECT_DOUBLE_EQ(to_seconds(kDay), 86400.0);
  EXPECT_EQ(format_vtime(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond),
            "1+02:03:04");
  EXPECT_EQ(format_vtime(-kHour), "-0+01:00:00");

  VirtualClock clock;
  clock.advance(5 * kSecond);
  clock.advance_to(3 * kSecond);  // never goes backwards
  EXPECT_EQ(clock.now(), 5 * kSecond);
  clock.advance_to(10 * kSecond);
  EXPECT_EQ(clock.now(), 10 * kSecond);
}

TEST(VClock, UnixEpochAnchor) {
  // VTime 0 = 2021-04-16T00:00Z = 1618531200 Unix.
  EXPECT_EQ(kUnixEpochVtime, -1618531200LL * kSecond);
}

}  // namespace
}  // namespace snmpv3fp::util
