// Real-socket campaign engine tests (net/batched_udp.hpp).
//
// Four layers, lowest first:
//  1. TokenBucketPacer under a fake clock: burst release, refill rate,
//     adaptive backoff/recovery and the min-rate floor — no sleeps.
//  2. Wire plumbing: the SimFrame encapsulation codec and the UdpSocket
//     send-errno taxonomy (EAGAIN/ECONNREFUSED as distinct outcomes).
//  3. BatchedUdpEngine over loopback sockets: batched vs per-datagram
//     delivery, truncation accounting, ICMP refusal surfacing.
//  4. The tentpole contract: a full pipeline probing through real kernel
//     sockets against a sim::LoopbackReflector produces a PipelineResult
//     bit-identical to the sim-fabric run, at 1/2/8 threads.
//
// Every socket-touching test probes availability first and GTEST_SKIPs
// when the sandbox denies sockets — CI shows the skip, never a silent
// pass.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>

#include "core/pipeline.hpp"
#include "net/batched_udp.hpp"
#include "net/udp_socket.hpp"
#include "scan/campaign.hpp"
#include "scan/pacer.hpp"
#include "sim/reflector.hpp"
#include "topo/generator.hpp"
#include "topo/world_model.hpp"

namespace snmpv3fp {
namespace {

// ---------------------------------------------------------------------------
// TokenBucketPacer (satellite: wall-clock pacer tests, fake clock only)
// ---------------------------------------------------------------------------

scan::PacerConfig bucket_config(std::size_t burst) {
  scan::PacerConfig config;
  config.burst_probes = burst;
  return config;
}

TEST(TokenBucketPacer, OpensWithAFullBurstThenEarnsAtTheTargetRate) {
  scan::TokenBucketPacer pacer(1000.0, bucket_config(8));
  // First observation primes a full bucket: eight probes leave at t=0.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pacer.next_send_time(0), 0) << "probe " << i;
    pacer.on_probe_sent(0);
  }
  // Bucket empty: the next slot is one token away (1 ms at 1 kpps).
  const util::VTime next = pacer.next_send_time(0);
  EXPECT_GT(next, 0);
  EXPECT_LE(next, util::kMillisecond + 10);
  // At that time the token has been earned.
  EXPECT_EQ(pacer.next_send_time(next), next);
}

TEST(TokenBucketPacer, RefillCapsAtTheBurstSize) {
  scan::TokenBucketPacer pacer(1000.0, bucket_config(4));
  pacer.next_send_time(0);  // prime
  for (int i = 0; i < 4; ++i) pacer.on_probe_sent(0);
  // Ten idle seconds earn 10000 tokens but the bucket holds four: the
  // fifth back-to-back probe must wait.
  const util::VTime later = 10 * util::kSecond;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pacer.next_send_time(later), later);
    pacer.on_probe_sent(later);
  }
  EXPECT_GT(pacer.next_send_time(later), later);
}

TEST(TokenBucketPacer, LongRunRateMatchesTheTarget) {
  scan::TokenBucketPacer pacer(2000.0, bucket_config(64));
  util::VTime now = 0;
  std::size_t sent = 0;
  while (now < util::kSecond) {
    now = pacer.next_send_time(now);
    if (now >= util::kSecond) break;
    pacer.on_probe_sent(now);
    ++sent;
  }
  // One virtual second at 2 kpps: the burst structure must not change the
  // long-run rate (the initial full burst allows a small overshoot).
  EXPECT_GE(sent, 1990u);
  EXPECT_LE(sent, 2000u + 64u);
}

TEST(TokenBucketPacer, SilentWindowsBackOffAndHealthyWindowsRecover) {
  scan::PacerConfig config = bucket_config(4);
  config.adaptive = true;
  config.window_probes = 4;
  config.min_rate_pps = 100.0;
  scan::TokenBucketPacer pacer(1000.0, config);
  const auto run_window = [&](std::size_t responses) {
    pacer.on_responses(responses);
    for (int i = 0; i < 4; ++i) pacer.on_probe_sent(0);
  };
  run_window(4);  // window 1 learns the baseline (rate 1.0)
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 1000.0);
  run_window(0);  // collapse: rate halves
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 500.0);
  EXPECT_EQ(pacer.state().backoffs, 1u);
  run_window(0);  // collapse again
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 250.0);
  run_window(4);  // healthy: multiplicative recovery toward the target
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 312.5);
  EXPECT_EQ(pacer.state().backoffs, 2u);
}

TEST(TokenBucketPacer, BackoffFloorsAtTheMinimumRate) {
  scan::PacerConfig config = bucket_config(4);
  config.adaptive = true;
  config.window_probes = 2;
  config.min_rate_pps = 100.0;
  scan::TokenBucketPacer pacer(1000.0, config);
  pacer.on_responses(2);
  for (int i = 0; i < 2; ++i) pacer.on_probe_sent(0);  // baseline window
  for (int window = 0; window < 10; ++window)
    for (int i = 0; i < 2; ++i) pacer.on_probe_sent(0);  // all silent
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 100.0);
  // The backed-off rate slows the schedule: one token now takes 10 ms.
  pacer.next_send_time(0);
  while (pacer.next_send_time(0) <= 0) pacer.on_probe_sent(0);
  const util::VTime gap = pacer.next_send_time(0);
  EXPECT_GE(gap, 9 * util::kMillisecond);
}

TEST(TokenBucketPacer, ExplicitRateLimitSignalsBackOffImmediately) {
  scan::PacerConfig config = bucket_config(4);
  config.adaptive = true;
  config.window_probes = 2;
  scan::TokenBucketPacer pacer(1000.0, config);
  pacer.on_rate_limit_signals(1);
  pacer.on_responses(2);
  for (int i = 0; i < 2; ++i) pacer.on_probe_sent(0);
  // Even the baseline-learning window backs off when the device said so.
  EXPECT_EQ(pacer.state().backoffs, 1u);
  EXPECT_DOUBLE_EQ(pacer.state().rate_pps, 500.0);
  EXPECT_EQ(pacer.state().rate_limit_signals, 1u);
}

TEST(TokenBucketPacer, StateRoundTripsThroughRestore) {
  scan::PacerConfig config = bucket_config(4);
  config.adaptive = true;
  config.window_probes = 2;
  scan::TokenBucketPacer pacer(1000.0, config);
  pacer.on_responses(2);
  for (int i = 0; i < 4; ++i) pacer.on_probe_sent(0);
  const scan::PacerState saved = pacer.state();

  scan::TokenBucketPacer resumed(1000.0, config);
  resumed.restore(saved);
  EXPECT_DOUBLE_EQ(resumed.state().rate_pps, saved.rate_pps);
  EXPECT_EQ(resumed.state().backoffs, saved.backoffs);
  // The bucket re-primes full on the first post-restore observation.
  EXPECT_EQ(resumed.next_send_time(5 * util::kSecond), 5 * util::kSecond);
}

// ---------------------------------------------------------------------------
// SimFrame codec
// ---------------------------------------------------------------------------

TEST(SimFrame, RoundTripsV4AndV6Endpoints) {
  net::SimFrame frame;
  frame.kind = net::SimFrame::kData;
  frame.logical = {net::IpAddress(net::Ipv4(203, 0, 113, 9)), 161};
  frame.time = 1234567890123;
  std::uint8_t wire[net::SimFrame::kWireSize];
  frame.encode(wire);
  const auto back = net::SimFrame::decode({wire, sizeof wire});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, net::SimFrame::kData);
  EXPECT_EQ(back->logical, frame.logical);
  EXPECT_EQ(back->time, frame.time);

  net::SimFrame v6;
  v6.kind = net::SimFrame::kDrop;
  v6.logical = {net::IpAddress(net::Ipv6::from_groups(
                    {0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x99})),
                54321};
  v6.time = -1;  // negative vtimes survive (signed wire field)
  v6.encode(wire);
  const auto back6 = net::SimFrame::decode({wire, sizeof wire});
  ASSERT_TRUE(back6.has_value());
  EXPECT_EQ(back6->kind, net::SimFrame::kDrop);
  EXPECT_EQ(back6->logical, v6.logical);
  EXPECT_EQ(back6->time, v6.time);
}

TEST(SimFrame, RejectsShortAndGarbageInput) {
  EXPECT_FALSE(net::SimFrame::decode({}).has_value());
  std::uint8_t short_buf[net::SimFrame::kWireSize - 1] = {};
  EXPECT_FALSE(net::SimFrame::decode({short_buf, sizeof short_buf}));
  std::uint8_t garbage[net::SimFrame::kWireSize];
  std::memset(garbage, 0x5a, sizeof garbage);  // kind 0x5a: not a frame
  EXPECT_FALSE(net::SimFrame::decode({garbage, sizeof garbage}));
}

// ---------------------------------------------------------------------------
// UdpSocket error taxonomy (satellite 1)
// ---------------------------------------------------------------------------

TEST(UdpSocketTaxonomy, ClassifiesSendErrnos) {
  using net::SendOutcome;
  EXPECT_EQ(net::classify_send_errno(EAGAIN), SendOutcome::kWouldBlock);
  EXPECT_EQ(net::classify_send_errno(EWOULDBLOCK), SendOutcome::kWouldBlock);
  EXPECT_EQ(net::classify_send_errno(ENOBUFS), SendOutcome::kWouldBlock);
  EXPECT_EQ(net::classify_send_errno(ECONNREFUSED), SendOutcome::kRefused);
  EXPECT_FALSE(net::classify_send_errno(EINVAL).has_value());
  EXPECT_FALSE(net::classify_send_errno(EPERM).has_value());
}

TEST(UdpSocketTaxonomy, PortUnreachableSurfacesAsRefused) {
  auto socket = net::UdpSocket::open(net::Family::kIpv4);
  if (!socket.ok()) GTEST_SKIP() << "sockets unavailable: " << socket.error();
  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  ASSERT_TRUE(socket.value().bind_to(loopback).ok());

  // A freshly bound-then-closed port: nothing listens there.
  net::Endpoint dead;
  {
    auto probe = net::UdpSocket::open(net::Family::kIpv4);
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(probe.value().bind_to(loopback).ok());
    auto local = probe.value().local_endpoint();
    ASSERT_TRUE(local.ok());
    dead = local.value();
  }
  ASSERT_TRUE(socket.value().connect_to(dead).ok());

  const std::uint8_t payload[] = {0x42};
  bool refused = false;
  for (int attempt = 0; attempt < 5 && !refused; ++attempt) {
    auto sent = socket.value().send_to(dead, {payload, 1});
    ASSERT_TRUE(sent.ok()) << sent.error();
    if (sent.value() == net::SendOutcome::kRefused) refused = true;
    auto received = socket.value().receive(50);
    if (received.ok() && received.value().refused) refused = true;
  }
  EXPECT_TRUE(refused) << "ICMP port-unreachable never surfaced";
}

// ---------------------------------------------------------------------------
// BatchedUdpEngine over loopback
// ---------------------------------------------------------------------------

net::EngineConfig wall_engine_config(net::BatchMode mode) {
  net::EngineConfig config;
  config.clock = net::EngineClock::kWall;
  config.batch = mode;
  config.batch_size = 32;
  config.flow_window = 0;  // non-encap: no reflector to answer
  return config;
}

void expect_loopback_delivery(net::BatchMode mode) {
  auto sender = net::BatchedUdpEngine::open(wall_engine_config(mode));
  if (!sender.ok()) GTEST_SKIP() << "sockets unavailable: " << sender.error();
  auto receiver = net::BatchedUdpEngine::open(wall_engine_config(mode));
  ASSERT_TRUE(receiver.ok()) << receiver.error();
  net::BatchedUdpEngine& tx = *sender.value();
  net::BatchedUdpEngine& rx = *receiver.value();
  const net::Endpoint destination = rx.local_endpoint();

  constexpr std::size_t kCount = 100;
  constexpr std::size_t kLen = 60;
  for (std::size_t i = 0; i < kCount; ++i) {
    auto frame = tx.acquire_send_frame(kLen);
    ASSERT_EQ(frame.size(), kLen);
    std::memset(frame.data(), static_cast<int>(i & 0xff), kLen);
    tx.commit_send_frame({}, destination, kLen, tx.now());
  }
  tx.flush();
  EXPECT_EQ(tx.stats().datagrams_sent, kCount);
  if (mode == net::BatchMode::kPerDatagram) {
    EXPECT_EQ(tx.stats().sendmmsg_calls, 0u);
    EXPECT_EQ(tx.stats().sendto_calls, kCount);
  } else if (tx.batching()) {
    EXPECT_GT(tx.stats().sendmmsg_calls, 0u);
    EXPECT_EQ(tx.stats().sendto_calls, 0u);
  }

  std::size_t got = 0;
  std::size_t checked_payloads = 0;
  const util::VTime deadline = rx.now() + 2 * util::kSecond;
  while (got < kCount && rx.now() < deadline) {
    rx.run_until(rx.now() + 20 * util::kMillisecond);
    while (const auto view = rx.receive_view()) {
      ASSERT_EQ(view->payload.size(), kLen);
      // Loopback preserves order, so the fill byte tracks the index.
      if (view->payload[0] == static_cast<std::uint8_t>(got & 0xff))
        ++checked_payloads;
      EXPECT_EQ(view->source, tx.local_endpoint());
      ++got;
    }
  }
  EXPECT_EQ(got, kCount);
  EXPECT_EQ(checked_payloads, kCount);
  EXPECT_EQ(rx.stats().datagrams_received, kCount);
}

TEST(BatchedUdpEngine, DeliversBatchedOverLoopback) {
  expect_loopback_delivery(net::BatchMode::kAuto);
}

TEST(BatchedUdpEngine, DeliversPerDatagramOverLoopback) {
  expect_loopback_delivery(net::BatchMode::kPerDatagram);
}

TEST(BatchedUdpEngine, OversizedDatagramsCountAsTruncated) {
  auto sender = net::BatchedUdpEngine::open(
      wall_engine_config(net::BatchMode::kAuto));
  if (!sender.ok()) GTEST_SKIP() << "sockets unavailable: " << sender.error();
  auto receiver = net::BatchedUdpEngine::open(
      wall_engine_config(net::BatchMode::kAuto));
  ASSERT_TRUE(receiver.ok()) << receiver.error();
  net::BatchedUdpEngine& tx = *sender.value();
  net::BatchedUdpEngine& rx = *receiver.value();

  // Larger than the receiver's ring stride (max(2048, frame_bytes + 28)):
  // the kernel clips it and the engine counts the truncation.
  const util::Bytes oversize(4000, 0xab);
  tx.send_view({}, rx.local_endpoint(), oversize, tx.now());
  tx.flush();

  std::size_t got = 0;
  const util::VTime deadline = rx.now() + 2 * util::kSecond;
  while (got == 0 && rx.now() < deadline) {
    rx.run_until(rx.now() + 20 * util::kMillisecond);
    while (const auto view = rx.receive_view()) {
      EXPECT_LT(view->payload.size(), oversize.size());
      ++got;
    }
  }
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(rx.stats().recv_truncated, 1u);
}

// ---------------------------------------------------------------------------
// Pipeline equality: real sockets == sim fabric, bit for bit
// ---------------------------------------------------------------------------

// World restricted to the rng-unobservable subset: no engine-time jitter,
// no future-time draws, no load-balancer backend selection. Everything
// else (zero-time bugs, amplifiers, churn, dead space) stays.
topo::WorldConfig deterministic_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 17;
  config.future_time_rate = 0.0;
  config.time_jitter_rate = 0.0;
  config.load_balancer_rate = 0.0;
  return config;
}

// Fabric restricted to the deterministic subset the reflector mirrors:
// zero loss, one fixed (even) RTT, no faults, no policing.
sim::FabricConfig deterministic_fabric() {
  sim::FabricConfig fabric;
  fabric.probe_loss = 0.0;
  fabric.response_loss = 0.0;
  fabric.min_rtt = 20 * util::kMillisecond;
  fabric.max_rtt = 20 * util::kMillisecond;
  return fabric;
}

core::PipelineResult run_equality_pipeline(bool net, std::size_t threads) {
  core::PipelineOptions options;
  options.world = deterministic_world();
  options.fabric = deterministic_fabric();
  options.parallel.threads = threads;
  if (net) {
    net::EngineConfig engine;
    engine.clock = net::EngineClock::kVirtual;
    // Eight shard engines share the reflector's receive buffer; a small
    // batch (flow window = 2x batch) keeps their combined in-flight
    // window far under it.
    engine.batch_size = 16;
    options.net_engine = engine;
    options.net_rtt = 20 * util::kMillisecond;
  }
  return core::run_full_pipeline(options);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  EXPECT_EQ(a.probe_bytes, b.probe_bytes);
  EXPECT_EQ(a.undecodable_responses, b.undecodable_responses);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target);
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.response_bytes, rb.response_bytes);
    EXPECT_EQ(ra.extra_engines, rb.extra_engines);
  }
}

void expect_identical(const core::PipelineResult& sim_run,
                      const core::PipelineResult& net_run) {
  expect_same_scan(sim_run.v4_campaign.scan1, net_run.v4_campaign.scan1);
  expect_same_scan(sim_run.v4_campaign.scan2, net_run.v4_campaign.scan2);
  expect_same_scan(sim_run.v6_campaign.scan1, net_run.v6_campaign.scan1);
  expect_same_scan(sim_run.v6_campaign.scan2, net_run.v6_campaign.scan2);

  ASSERT_EQ(sim_run.v4_records.size(), net_run.v4_records.size());
  ASSERT_EQ(sim_run.v6_records.size(), net_run.v6_records.size());
  ASSERT_EQ(sim_run.resolution.sets.size(), net_run.resolution.sets.size());
  for (std::size_t i = 0; i < sim_run.resolution.sets.size(); ++i) {
    ASSERT_EQ(sim_run.resolution.sets[i].addresses,
              net_run.resolution.sets[i].addresses);
    EXPECT_EQ(sim_run.resolution.sets[i].engine_id,
              net_run.resolution.sets[i].engine_id);
  }
  ASSERT_EQ(sim_run.devices.size(), net_run.devices.size());
  for (std::size_t i = 0; i < sim_run.devices.size(); ++i) {
    EXPECT_EQ(sim_run.devices[i].fingerprint.vendor,
              net_run.devices[i].fingerprint.vendor);
    EXPECT_EQ(sim_run.devices[i].is_router, net_run.devices[i].is_router);
  }
}

TEST(NetEnginePipeline, BitIdenticalToSimFabricAcrossThreadCounts) {
  {
    net::EngineConfig probe;
    auto available = net::BatchedUdpEngine::open(probe);
    if (!available.ok())
      GTEST_SKIP() << "sockets unavailable: " << available.error();
  }
  const core::PipelineResult sim_run = run_equality_pipeline(false, 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const core::PipelineResult net_run = run_equality_pipeline(true, threads);
    if (!net_run.v4_campaign.net_error.empty())
      GTEST_SKIP() << "net engine unavailable: "
                   << net_run.v4_campaign.net_error;
    expect_identical(sim_run, net_run);
    // The probes really went through the kernel.
    EXPECT_GT(net_run.v4_campaign.net_io.datagrams_sent, 0u);
    EXPECT_EQ(sim_run.v4_campaign.net_io.datagrams_sent, 0u);
  }
}

// ---------------------------------------------------------------------------
// Wall-clock campaign smoke test
// ---------------------------------------------------------------------------

TEST(NetEngineCampaign, WallClockCampaignCompletesAgainstTheReflector) {
  topo::World world = topo::generate_world(deterministic_world());
  topo::MaterializedWorldModel model(world);
  sim::ReflectorConfig reflector_config;
  auto reflector = sim::LoopbackReflector::start(model, reflector_config);
  if (!reflector.ok())
    GTEST_SKIP() << "sockets unavailable: " << reflector.error();

  scan::CampaignOptions options;
  options.family = net::Family::kIpv4;
  options.rate_pps = 20000.0;
  options.shards = 2;
  options.response_timeout = 300 * util::kMillisecond;
  net::EngineConfig engine;
  engine.clock = net::EngineClock::kWall;
  engine.batch_size = 32;
  engine.sim_peer = reflector.value()->endpoint();
  options.net_engine = engine;

  const scan::CampaignPair pair = scan::run_two_scan_campaign(model, options);
  ASSERT_TRUE(pair.net_error.empty()) << pair.net_error;
  EXPECT_GT(pair.scan1.responsive(), 0u);
  EXPECT_GT(pair.scan2.responsive(), 0u);
  EXPECT_EQ(pair.scan1.targets_probed, pair.scan2.targets_probed);
  EXPECT_GT(pair.net_io.datagrams_sent, 0u);
  EXPECT_GT(pair.net_io.datagrams_received, 0u);
  // Wall campaigns pace with the token bucket over real timestamps, so
  // end_time really trails start_time.
  EXPECT_GT(pair.scan1.end_time, pair.scan1.start_time);
  const sim::ReflectorStats reflector_stats = reflector.value()->stats();
  EXPECT_GT(reflector_stats.delivered, 0u);
  EXPECT_EQ(reflector_stats.bad_frames, 0u);
}

}  // namespace
}  // namespace snmpv3fp
