// Property-style validation of the full methodology against simulation
// ground truth, across seeds — the evaluation an Internet measurement
// cannot do. Invariants:
//   * alias-pair precision stays near 1 under default noise,
//   * dual-stack merges never join different physical devices,
//   * the whole pipeline is bit-deterministic for a given config.
#include <gtest/gtest.h>

#include "baselines/compare.hpp"
#include "core/pipeline.hpp"

namespace snmpv3fp {
namespace {

core::PipelineResult run_tiny(std::uint64_t seed) {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  options.world.seed = seed;
  options.seed = seed * 31 + 7;
  return core::run_full_pipeline(options);
}

class GroundTruth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroundTruth, AliasPrecisionAcrossSeeds) {
  const auto r = run_tiny(GetParam());

  baselines::AliasSets sets;
  for (const auto& set : r.resolution.sets) sets.push_back(set.addresses);
  std::vector<net::IpAddress> universe;
  for (const auto& record : r.v4_records) universe.push_back(record.address);
  for (const auto& record : r.v6_records) universe.push_back(record.address);

  const auto metrics = baselines::pair_metrics(
      sets,
      [&](const net::IpAddress& address) -> std::int64_t {
        const auto index = r.world.device_index_at(address);
        return index == topo::kNoDevice ? -1
                                        : static_cast<std::int64_t>(index);
      },
      universe);
  ASSERT_GT(metrics.inferred_pairs, 0u);
  EXPECT_GT(metrics.precision(), 0.97) << "seed " << GetParam();
  // Recall is substantially below 1 even over the filtered universe: bin
  // straddling and clock drift between the IPv6 (day 0-1) and IPv4
  // (day 3-9) campaigns split some true cross-family aliases. That is the
  // honest cost of the conservative keying the paper chose.
  EXPECT_GT(metrics.recall(), 0.4) << "seed " << GetParam();
}

TEST_P(GroundTruth, DualStackSetsNeverMixDevices) {
  const auto r = run_tiny(GetParam());
  std::size_t dual_sets = 0;
  for (const auto& set : r.resolution.sets) {
    if (!set.dual_stack()) continue;
    ++dual_sets;
    const auto first = r.world.device_index_at(set.addresses.front());
    for (const auto& address : set.addresses) {
      const auto device = r.world.device_index_at(address);
      if (device != topo::kNoDevice && first != topo::kNoDevice)
        EXPECT_EQ(device, first) << "seed " << GetParam();
    }
  }
  EXPECT_GT(dual_sets, 0u);
}

TEST_P(GroundTruth, FingerprintsMatchTrueVendors) {
  const auto r = run_tiny(GetParam());
  std::size_t checked = 0, correct = 0;
  for (const auto& device : r.devices) {
    if (device.fingerprint.vendor == "Unknown") continue;
    const auto index = r.world.device_index_at(device.set->addresses.front());
    if (index == topo::kNoDevice) continue;
    ++checked;
    correct += r.world.devices[index].vendor->name == device.fingerprint.vendor;
  }
  ASSERT_GT(checked, 100u);
  // Small impurities are expected: cross-vendor clones, SoC OUIs, etc.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.97)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruth,
                         ::testing::Values(7u, 1001u, 20210416u));

TEST(GroundTruthDeterminism, IdenticalRunsProduceIdenticalSets) {
  const auto a = run_tiny(7);
  const auto b = run_tiny(7);
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    EXPECT_EQ(a.resolution.sets[i].addresses, b.resolution.sets[i].addresses);
    EXPECT_EQ(a.resolution.sets[i].engine_id, b.resolution.sets[i].engine_id);
  }
  EXPECT_EQ(a.v4_report.dropped, b.v4_report.dropped);
  EXPECT_EQ(a.v4_campaign.scan1.responsive(),
            b.v4_campaign.scan1.responsive());
}

TEST(GroundTruthDeterminism, DifferentSeedsDiffer) {
  const auto a = run_tiny(7);
  const auto b = run_tiny(8);
  EXPECT_NE(a.v4_campaign.scan1.responsive(),
            b.v4_campaign.scan1.responsive());
}

}  // namespace
}  // namespace snmpv3fp
