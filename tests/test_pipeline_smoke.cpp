// End-to-end smoke: the full pipeline over the tiny world produces sane
// intermediate products at every stage.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace snmpv3fp {
namespace {

class PipelineSmoke : public ::testing::Test {
 protected:
  static const core::PipelineResult& result() {
    static const core::PipelineResult r = [] {
      core::PipelineOptions options;
      options.world = topo::WorldConfig::tiny();
      return core::run_full_pipeline(options);
    }();
    return r;
  }
};

TEST_F(PipelineSmoke, WorldHasDevicesAndRouters) {
  EXPECT_GT(result().world.devices.size(), 100u);
  EXPECT_GT(result().world.router_count(), 50u);
}

TEST_F(PipelineSmoke, ScansGotResponses) {
  EXPECT_GT(result().v4_campaign.scan1.responsive(), 50u);
  EXPECT_GT(result().v4_campaign.scan2.responsive(), 50u);
  // Probe payload matches the paper's 60 bytes (88 on the IPv4 wire).
  EXPECT_EQ(result().v4_campaign.scan1.probe_bytes, 60u);
}

TEST_F(PipelineSmoke, JoinAndFiltersShrinkMonotonically) {
  const auto& r = result();
  EXPECT_LE(r.v4_joined.size(), r.v4_campaign.scan1.responsive());
  EXPECT_LE(r.v4_records.size(), r.v4_joined.size());
  EXPECT_GT(r.v4_records.size(), 0u);
  EXPECT_EQ(r.v4_report.input, r.v4_joined.size());
  EXPECT_EQ(r.v4_report.output, r.v4_records.size());
  EXPECT_EQ(r.v4_report.input - r.v4_report.total_dropped(),
            r.v4_report.output);
}

TEST_F(PipelineSmoke, AliasSetsPartitionRecords) {
  const auto& r = result();
  EXPECT_EQ(r.resolution.total_ips(),
            r.v4_records.size() + r.v6_records.size());
  EXPECT_GT(r.resolution.non_singleton_count(), 0u);
}

TEST_F(PipelineSmoke, DevicesAnnotated) {
  const auto& r = result();
  EXPECT_EQ(r.devices.size(), r.resolution.sets.size());
  EXPECT_GT(r.router_device_count(), 0u);
  std::size_t known_vendor = 0;
  for (const auto& device : r.devices)
    known_vendor += device.fingerprint.vendor != "Unknown";
  // The overwhelming majority of filtered devices should be identifiable.
  EXPECT_GT(known_vendor, r.devices.size() * 7 / 10);
}

TEST_F(PipelineSmoke, AliasPrecisionAgainstGroundTruth) {
  const auto& r = result();
  // Precision: two addresses in one inferred set should nearly always be
  // the same ground-truth device.
  std::size_t pairs_checked = 0, pairs_correct = 0;
  for (const auto& set : r.resolution.sets) {
    if (set.addresses.size() < 2) continue;
    const auto first_device = r.world.device_index_at(set.addresses[0]);
    for (std::size_t i = 1; i < set.addresses.size(); ++i) {
      ++pairs_checked;
      const auto device = r.world.device_index_at(set.addresses[i]);
      pairs_correct += device != topo::kNoDevice && device == first_device;
    }
  }
  ASSERT_GT(pairs_checked, 0u);
  EXPECT_GT(static_cast<double>(pairs_correct) /
                static_cast<double>(pairs_checked),
            0.95);
}

}  // namespace
}  // namespace snmpv3fp
