// The observability layer's contracts:
//  1. Metrics registry: sharded counters/gauges/histograms merge
//     deterministically at any worker thread count, in registration order.
//  2. Logger: level gating, sink capture, key=value formatting.
//  3. Spans: nesting depth, explicit finish, null-trace no-op.
//  4. JSON: escaping round-trips through the bundled parser.
//  5. EXECUTION-ONLY observability: PipelineResult is bit-identical with
//     observation enabled, disabled, and at any thread count — while the
//     observed RunReport carries real spans, fabric drop causes and a
//     filter funnel that matches Table 1 accounting exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "topo/generator.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp {
namespace {

// ---- metrics registry ----------------------------------------------------

obs::MetricsSnapshot count_with_threads(std::size_t threads) {
  obs::MetricsRegistry registry;
  // Register on the orchestrating thread (the documented contract).
  obs::Counter items = registry.counter("items");
  obs::Counter evens = registry.counter("evens");
  obs::Histogram hist = registry.histogram("values", {10.0, 100.0, 1000.0});
  util::parallel_for(0, 10000, {.threads = threads}, [&](std::size_t i) {
    items.add();
    if (i % 2 == 0) evens.add();
    hist.observe(static_cast<double>(i % 2000));
  });
  return registry.snapshot();
}

TEST(Metrics, ShardMergeDeterministicAcrossThreadCounts) {
  const auto one = count_with_threads(1);
  const auto two = count_with_threads(2);
  const auto eight = count_with_threads(8);

  ASSERT_EQ(one.counters.size(), 2u);
  EXPECT_EQ(one.counters[0].name, "items");
  EXPECT_EQ(one.counters[0].value, 10000u);
  EXPECT_EQ(one.counters[1].name, "evens");
  EXPECT_EQ(one.counters[1].value, 5000u);

  for (const auto* other : {&two, &eight}) {
    ASSERT_EQ(other->counters.size(), one.counters.size());
    for (std::size_t i = 0; i < one.counters.size(); ++i) {
      EXPECT_EQ(other->counters[i].name, one.counters[i].name);
      EXPECT_EQ(other->counters[i].value, one.counters[i].value);
    }
    ASSERT_EQ(other->histograms.size(), 1u);
    EXPECT_EQ(other->histograms[0].counts, one.histograms[0].counts);
    EXPECT_EQ(other->histograms[0].total, one.histograms[0].total);
  }
}

TEST(Metrics, HistogramBucketEdges) {
  obs::MetricsRegistry registry;
  obs::Histogram hist = registry.histogram("h", {1.0, 10.0});
  hist.observe(0.5);   // <= 1        -> bucket 0
  hist.observe(1.0);   // == bound    -> bucket 0 (inclusive upper edge)
  hist.observe(1.001); // > 1, <= 10  -> bucket 1
  hist.observe(10.0);  // == bound    -> bucket 1
  hist.observe(10.5);  // > 10        -> overflow
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& row = snap.histograms[0];
  ASSERT_EQ(row.counts.size(), 3u);  // two finite buckets + overflow
  EXPECT_EQ(row.counts[0], 2u);
  EXPECT_EQ(row.counts[1], 2u);
  EXPECT_EQ(row.counts[2], 1u);
  EXPECT_EQ(row.total, 5u);
}

TEST(Metrics, CounterWrapsModulo64Bits) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("wrap");
  counter.add(std::numeric_limits<std::uint64_t>::max());
  counter.add(5);  // wraps to 4
  const auto snap = registry.snapshot();
  ASSERT_FALSE(snap.counters.empty());
  EXPECT_EQ(snap.counters[0].value, 4u);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("x");
  obs::Counter b = registry.counter("x");  // same metric
  a.add(2);
  b.add(3);
  // Re-registering "x" as a gauge is a programming error: no-op handle.
  obs::Gauge wrong = registry.gauge("x");
  wrong.set(999);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(Metrics, SnapshotPreservesRegistrationOrder) {
  obs::MetricsRegistry registry;
  registry.counter("b");
  registry.counter("a");
  registry.counter("0");
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "b");
  EXPECT_EQ(snap.counters[1].name, "a");
  EXPECT_EQ(snap.counters[2].name, "0");
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram hist;
  counter.add(7);
  gauge.set(7);
  hist.observe(7.0);  // must not crash
}

TEST(Metrics, JsonRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("needs \"escaping\"\n").add(42);
  registry.gauge("g").set(-7);
  obs::Histogram hist = registry.histogram("h", {1.0, 2.0});
  hist.observe(0.5);
  hist.observe(5.0);
  const std::string json = registry.snapshot().to_json();

  const auto doc = obs::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* escaped = counters->find("needs \"escaping\"\n");
  ASSERT_NE(escaped, nullptr);
  EXPECT_EQ(escaped->as_number(), 42.0);
  const auto* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("g")->as_number(), -7.0);
  const auto* histograms = doc->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const auto* h = histograms->find("h");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("counts"), nullptr);
  EXPECT_EQ(h->find("counts")->items().size(), 3u);
}

// ---- JSON escaping / parsing ---------------------------------------------

TEST(Json, EscapeRoundTripsControlCharacters) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const std::string escaped = obs::json_escape(nasty);
  const auto parsed = obs::JsonValue::parse(escaped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), nasty);
}

TEST(Json, WriterProducesParsableDocuments) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("s", "text");
  json.kv("n", std::uint64_t{18446744073709551615ull});
  json.kv("d", 1.5);
  json.kv("b", true);
  json.key("arr").begin_array().value(std::int64_t{-1}).value(2.0).end_array();
  json.key("nested").begin_object().kv("k", "v").end_object();
  json.end_object();
  const auto doc = obs::JsonValue::parse(json.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "text");
  EXPECT_EQ(doc->find("b")->as_bool(), true);
  EXPECT_EQ(doc->find("arr")->items().size(), 2u);
  EXPECT_EQ(doc->find("nested")->find("k")->as_string(), "v");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{}trailing").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("nope").has_value());
}

// ---- logger ---------------------------------------------------------------

TEST(Log, FormatRendersLevelMessageAndFields) {
  const std::string line = obs::Logger::format(
      obs::LogLevel::kInfo, "scan finished",
      {{"label", "v4.scan1"}, {"targets", 9001}, {"rate", 0.25}});
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("msg=\"scan finished\""), std::string::npos);
  EXPECT_NE(line.find("label=v4.scan1"), std::string::npos);
  EXPECT_NE(line.find("targets=9001"), std::string::npos);
}

TEST(Log, LevelGatesAndSinkCaptures) {
  obs::Logger& logger = obs::Logger::global();
  const obs::LogLevel saved = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](std::string_view line) { lines.emplace_back(line); });

  logger.set_level(obs::LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kError));
  obs::log_info("dropped");
  obs::log_warn("kept", {{"k", "v"}});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(lines[0].find("msg=kept"), std::string::npos);
  EXPECT_NE(lines[0].find("k=v"), std::string::npos);

  logger.set_sink(nullptr);  // restore default stderr sink
  logger.set_level(saved);
}

TEST(Log, ParseLevelAcceptsKnownNamesOnly) {
  EXPECT_EQ(obs::parse_log_level("debug", obs::LogLevel::kOff),
            obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("WARN", obs::LogLevel::kOff),
            obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("bogus", obs::LogLevel::kError),
            obs::LogLevel::kError);
}

// ---- spans ----------------------------------------------------------------

TEST(Trace, SpansRecordNestingDepthAndVirtualTime) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "outer");
    outer.set_virtual_duration(42);
    {
      obs::Span inner(&trace, "inner");
    }
  }
  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].virtual_duration, 42);
  EXPECT_GE(spans[1].wall_ms, 0.0);
}

TEST(Trace, FinishIsIdempotentAndNullTraceIsNoOp) {
  obs::Trace trace;
  {
    obs::Span span(&trace, "phase");
    span.finish();
    span.finish();  // second finish must not double-record
  }                 // destructor must not record either
  EXPECT_EQ(trace.size(), 1u);

  obs::Span null_span(nullptr, "nothing");
  null_span.finish();  // must not crash
}

// ---- the execution-only contract ------------------------------------------

// Mid-size world (mirrors tests/test_parallel.cpp): dense enough that every
// parallel stage sees several chunks, fast enough to run the pipeline a few
// times in one test binary.
topo::WorldConfig mid_size_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 11;
  config.router_scale = 120.0;
  config.mega_scale = 120.0;
  config.device_scale = 1200.0;
  config.tail_as_count = 80;
  return config;
}

core::PipelineResult run_pipeline(std::size_t threads,
                                  obs::RunObserver* observer,
                                  core::PipelineOptions* options_out = nullptr) {
  core::PipelineOptions options;
  options.world = mid_size_world();
  options.parallel.threads = threads;
  options.obs.observer = observer;
  if (options_out != nullptr) *options_out = options;
  return core::run_full_pipeline(options);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target);
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
  }
}

void expect_identical(const core::PipelineResult& a,
                      const core::PipelineResult& b) {
  expect_same_scan(a.v4_campaign.scan1, b.v4_campaign.scan1);
  expect_same_scan(a.v4_campaign.scan2, b.v4_campaign.scan2);
  expect_same_scan(a.v6_campaign.scan1, b.v6_campaign.scan1);
  expect_same_scan(a.v6_campaign.scan2, b.v6_campaign.scan2);
  EXPECT_EQ(a.v4_campaign.fabric_stats.datagrams_sent,
            b.v4_campaign.fabric_stats.datagrams_sent);
  EXPECT_EQ(a.v4_campaign.fabric_stats.probes_lost,
            b.v4_campaign.fabric_stats.probes_lost);
  EXPECT_EQ(a.v4_campaign.fabric_stats.responses_duplicated,
            b.v4_campaign.fabric_stats.responses_duplicated);

  EXPECT_EQ(a.v4_report.input, b.v4_report.input);
  EXPECT_EQ(a.v4_report.dropped, b.v4_report.dropped);
  EXPECT_EQ(a.v4_report.output, b.v4_report.output);
  EXPECT_EQ(a.v6_report.dropped, b.v6_report.dropped);

  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    ASSERT_EQ(a.resolution.sets[i].addresses, b.resolution.sets[i].addresses);
    EXPECT_EQ(a.resolution.sets[i].engine_id, b.resolution.sets[i].engine_id);
  }
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].fingerprint.vendor, b.devices[i].fingerprint.vendor);
    EXPECT_EQ(a.devices[i].is_router, b.devices[i].is_router);
  }
}

TEST(ObsContract, ResultsBitIdenticalWithObsOnOffAndAcrossThreads) {
  const auto unobserved = run_pipeline(1, nullptr);

  obs::RunObserver obs1, obs8;
  const auto observed_seq = run_pipeline(1, &obs1);
  const auto observed_par = run_pipeline(8, &obs8);

  // Observation changes nothing; threads change nothing.
  expect_identical(unobserved, observed_seq);
  expect_identical(unobserved, observed_par);

  // ...but the observer actually saw the run.
  EXPECT_GT(obs1.trace().size(), 0u);
  EXPECT_FALSE(obs1.shard_progress().empty());
  EXPECT_FALSE(obs1.metrics().snapshot().counters.empty());
}

TEST(ObsContract, RunReportJsonMatchesPipelineAccounting) {
  obs::RunObserver observer;
  core::PipelineOptions options;
  const auto result = run_pipeline(4, &observer, &options);
  const auto report = core::build_run_report(result, options, &observer);

  const std::string json_text = report.to_json();
  const auto doc = obs::JsonValue::parse(json_text);
  ASSERT_TRUE(doc.has_value()) << "RunReport JSON must parse";

  // Spans: present, and at least one stage took measurable wall time.
  const auto* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_FALSE(spans->items().empty());
  double max_wall = 0.0;
  for (const auto& span : spans->items())
    max_wall = std::max(max_wall, span.find("wall_ms")->as_number());
  EXPECT_GT(max_wall, 0.0);

  // Campaign virtual time: the scans advanced the simulated clock.
  bool campaign_has_virtual = false;
  for (const auto& span : spans->items())
    if (span.find("name")->as_string().find("campaign") != std::string::npos &&
        span.find("virtual_s")->as_number() > 0.0)
      campaign_has_virtual = true;
  EXPECT_TRUE(campaign_has_virtual);

  // Fabric drop causes: lossy world => non-zero drops, and the per-cause
  // counters are internally consistent with datagrams_sent.
  const auto* campaigns = doc->find("campaigns");
  ASSERT_NE(campaigns, nullptr);
  ASSERT_FALSE(campaigns->items().empty());
  std::uint64_t total_drops = 0;
  for (const auto& campaign : campaigns->items()) {
    const auto* fabric = campaign.find("fabric");
    ASSERT_NE(fabric, nullptr);
    const auto* drops = fabric->find("drops");
    ASSERT_NE(drops, nullptr);
    const double sent = fabric->find("datagrams_sent")->as_number();
    const double delivered = fabric->find("datagrams_delivered")->as_number();
    const double probe_drops = drops->find("probes_lost")->as_number() +
                               drops->find("probes_dead")->as_number() +
                               drops->find("probes_filtered")->as_number() +
                               drops->find("probes_rate_limited")->as_number();
    EXPECT_EQ(sent, delivered + probe_drops);
    for (const auto& [name, value] : drops->members())
      total_drops += static_cast<std::uint64_t>(value.as_number());
  }
  EXPECT_GT(total_drops, 0u);

  // Filter funnel: the JSON's per-stage drop counts are exactly the
  // FilterReport's (Table 1), and input = drops + output = the number of
  // joined scan records entering the filter.
  const auto* funnels = doc->find("filter_funnels");
  ASSERT_NE(funnels, nullptr);
  ASSERT_EQ(funnels->items().size(), 2u);
  const auto& v4 = funnels->items()[0];
  ASSERT_EQ(v4.find("family")->as_string(), "ipv4");
  const auto* dropped = v4.find("dropped");
  ASSERT_NE(dropped, nullptr);
  ASSERT_EQ(dropped->members().size(), core::kFilterStageCount);
  std::uint64_t drop_sum = 0;
  for (std::size_t i = 0; i < core::kFilterStageCount; ++i) {
    const auto* stage = dropped->find(
        core::to_slug(static_cast<core::FilterStage>(i)));
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(stage->as_number()),
              result.v4_report.dropped[i]);
    drop_sum += static_cast<std::uint64_t>(stage->as_number());
  }
  const auto input = static_cast<std::uint64_t>(v4.find("input")->as_number());
  const auto output =
      static_cast<std::uint64_t>(v4.find("output")->as_number());
  EXPECT_EQ(input, drop_sum + output);
  EXPECT_EQ(input, result.v4_joined.size());
  EXPECT_EQ(output, result.v4_records.size());

  // Shard progress rows cover both families' scans and sum to the scan's
  // target/response totals.
  const auto* shard_rows = doc->find("shard_progress");
  ASSERT_NE(shard_rows, nullptr);
  std::uint64_t v4_scan1_responses = 0;
  for (const auto& row : shard_rows->items())
    if (row.find("stage")->as_string() == "pipeline.v4.scan1")
      v4_scan1_responses +=
          static_cast<std::uint64_t>(row.find("responses")->as_number());
  EXPECT_EQ(v4_scan1_responses, result.v4_campaign.scan1.records.size());

  // The table rendering exists and mentions the funnel.
  const std::string table = report.to_table();
  EXPECT_NE(table.find("ipv4"), std::string::npos);
  EXPECT_NE(table.find("Filter stage"), std::string::npos);
}

TEST(ObsContract, RateLimitKnobCountsDropsWhenEnabled) {
  // The fabric's rate-limit window is off by default (bit-compat with the
  // seed); switching it on must surface probes_rate_limited.
  topo::World world = topo::generate_world(mid_size_world());
  scan::CampaignOptions options;
  options.family = net::Family::kIpv4;
  options.seed = 7;
  options.fabric.device_rate_limit_pps = 1;
  const auto campaign = scan::run_two_scan_campaign(world, options);
  EXPECT_GT(campaign.fabric_stats.probes_rate_limited, 0u);
  EXPECT_EQ(campaign.fabric_stats.datagrams_sent,
            campaign.fabric_stats.datagrams_delivered +
                campaign.fabric_stats.probes_lost +
                campaign.fabric_stats.probes_dead +
                campaign.fabric_stats.probes_filtered +
                campaign.fabric_stats.probes_rate_limited);
}

}  // namespace
}  // namespace snmpv3fp
