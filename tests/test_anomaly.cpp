// NAT / load-balancer / churn classification (paper §9 future work).
#include <gtest/gtest.h>

#include "core/anomaly.hpp"
#include "scan/campaign.hpp"
#include "topo/datasets.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::core {
namespace {

// Hand-built two-AS world with one specimen of each anomaly class plus a
// well-behaved control device.
topo::World fixture_world() {
  topo::World world;
  for (std::uint32_t i = 0; i < 2; ++i) {
    topo::AutonomousSystem as;
    as.asn = 100 + i;
    as.region = i == 0 ? "EU" : "NA";
    as.v4_prefix = net::Prefix4(net::Ipv4(static_cast<std::uint8_t>(60 + i),
                                          0, 0, 0), 16);
    as.v6_prefix = {0x2001, static_cast<std::uint16_t>(100 + i)};
    world.ases.push_back(std::move(as));
  }
  world.v4_cursor.assign(2, 1000);

  const auto add_device = [&](std::uint32_t as_index) -> topo::Device& {
    topo::Device device;
    device.index = static_cast<topo::DeviceIndex>(world.devices.size());
    device.vendor = &topo::vendor_profile("Cisco");
    device.as_index = as_index;
    device.snmpv3_enabled = true;
    device.reboots = {-10 * util::kDay};
    device.boots_before_history = 4;
    world.devices.push_back(std::move(device));
    return world.devices.back();
  };
  const auto iface = [](std::uint8_t a, std::uint8_t d) {
    topo::Interface itf;
    itf.mac = net::MacAddress::from_oui(0x00000c, d);
    itf.v4 = net::Ipv4(a, 0, 0, d);
    return itf;
  };

  // 0: control router, two interfaces in AS 0.
  auto& control = add_device(0);
  control.interfaces = {iface(60, 1), iface(60, 2)};
  control.engine_id = snmp::EngineId::make_mac(9, control.interfaces[0].mac);

  // 1: load-balancer VIP fronting two backends.
  auto& lb = add_device(0);
  lb.kind = topo::DeviceKind::kServer;
  lb.interfaces = {iface(60, 10)};
  lb.engine_id = snmp::EngineId::make_netsnmp(0x1111);
  lb.backend_engines = {snmp::EngineId::make_netsnmp(0x2222),
                        snmp::EngineId::make_netsnmp(0x3333)};

  // 2+3: churning CPE pair (addresses recycle between the two of them).
  for (std::uint32_t c = 0; c < 2; ++c) {
    auto& cpe = add_device(0);
    cpe.kind = topo::DeviceKind::kCpe;
    cpe.interfaces = {iface(60, static_cast<std::uint8_t>(20 + c))};
    cpe.engine_id = snmp::EngineId::make_mac(
        4413, net::MacAddress::from_oui(0xd07ab5, 20 + c));
    cpe.churns = true;
  }

  // 4: NAT'd router — same engine reachable in AS 0 and AS 1.
  auto& nat = add_device(0);
  nat.interfaces = {iface(60, 30), iface(61, 30)};
  nat.engine_id = snmp::EngineId::make_mac(9, nat.interfaces[0].mac);

  world.reindex();
  return world;
}

class AnomalyTest : public ::testing::Test {
 protected:
  AnomalyTest() : world_(fixture_world()) {
    scan::CampaignOptions options;
    options.seed = 29;
    options.fabric.probe_loss = 0.0;
    options.fabric.response_loss = 0.0;
    pair_ = scan::run_two_scan_campaign(world_, options);
    as_table_ = topo::build_as_table(world_);
  }

  AnomalyReport classify() {
    sim::Fabric fabric(world_, {.seed = 5, .probe_loss = 0.0,
                                .response_loss = 0.0});
    fabric.clock().advance(20 * util::kDay);
    return classify_anomalies(pair_.scan1, pair_.scan2, fabric,
                              {net::Ipv4(198, 51, 100, 7), 4444}, as_table_);
  }

  topo::World world_;
  scan::CampaignPair pair_;
  net::AsTable as_table_;
};

TEST_F(AnomalyTest, DetectsLoadBalancer) {
  const auto report = classify();
  EXPECT_GE(report.load_balancer_count(), 1u);
  bool found = false;
  for (const auto& anomaly : report.anomalies) {
    if (anomaly.kind != AnomalyKind::kLoadBalancer) continue;
    EXPECT_EQ(anomaly.address, net::IpAddress(net::Ipv4(60, 0, 0, 10)));
    EXPECT_GE(anomaly.engines.size(), 2u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(AnomalyTest, DetectsAddressChurn) {
  const auto report = classify();
  // The recycled CPE lease shows a different engine in scan 2 whose
  // scan-1 engine reappeared at the partner address.
  EXPECT_GE(report.churn_count(), 1u);
  for (const auto& anomaly : report.anomalies) {
    if (anomaly.kind != AnomalyKind::kAddressChurn) continue;
    EXPECT_EQ(anomaly.engines.size(), 2u);
  }
}

TEST_F(AnomalyTest, DetectsNatFrontend) {
  const auto report = classify();
  EXPECT_GE(report.nat_count(), 2u);  // both frontends flagged
  std::set<std::string> nat_addresses;
  for (const auto& anomaly : report.anomalies)
    if (anomaly.kind == AnomalyKind::kNat)
      nat_addresses.insert(anomaly.address.to_string());
  EXPECT_TRUE(nat_addresses.count("60.0.0.30"));
  EXPECT_TRUE(nat_addresses.count("61.0.0.30"));
}

TEST_F(AnomalyTest, ControlDeviceNotFlagged) {
  const auto report = classify();
  for (const auto& anomaly : report.anomalies) {
    EXPECT_NE(anomaly.address, net::IpAddress(net::Ipv4(60, 0, 0, 1)));
    EXPECT_NE(anomaly.address, net::IpAddress(net::Ipv4(60, 0, 0, 2)));
  }
}

TEST_F(AnomalyTest, KindNames) {
  EXPECT_EQ(to_string(AnomalyKind::kLoadBalancer), "load balancer");
  EXPECT_EQ(to_string(AnomalyKind::kNat), "NAT frontend");
}

}  // namespace
}  // namespace snmpv3fp::core
