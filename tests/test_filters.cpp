#include <gtest/gtest.h>

#include "core/filters.hpp"
#include "net/registry.hpp"

namespace snmpv3fp::core {
namespace {

using snmp::EngineId;

// A record that sails through every filter stage.
JoinedRecord good_record(std::uint32_t host = 1) {
  JoinedRecord record;
  record.address = net::Ipv4(0x08000000u + host);
  record.first.target = record.address;
  record.first.engine_id = EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, host));
  record.first.engine_boots = 5;
  record.first.engine_time = 1000000;
  record.first.receive_time = 10 * util::kDay;
  record.second = record.first;
  record.second.receive_time = 16 * util::kDay;
  record.second.engine_time = 1000000 + 6 * 86400;
  return record;
}

FilterReport run(std::vector<JoinedRecord> records,
                 std::vector<JoinedRecord>* survivors = nullptr,
                 FilterOptions options = {}) {
  FilterPipeline pipeline(options);
  const auto report = pipeline.apply(records);
  if (survivors != nullptr) *survivors = std::move(records);
  return report;
}

TEST(Filters, GoodRecordSurvivesEverything) {
  const auto report = run({good_record()});
  EXPECT_EQ(report.input, 1u);
  EXPECT_EQ(report.output, 1u);
  EXPECT_EQ(report.total_dropped(), 0u);
}

TEST(Filters, MissingEngineId) {
  auto record = good_record();
  record.first.engine_id = EngineId();
  record.second.engine_id = EngineId();
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kMissingEngineId), 1u);
  EXPECT_EQ(report.output, 0u);
}

TEST(Filters, MissingInOnlyOneScanStillDrops) {
  auto record = good_record();
  record.second.engine_id = EngineId();
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kMissingEngineId), 1u);
}

TEST(Filters, InconsistentEngineId) {
  auto record = good_record();
  record.second.engine_id = EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 999999));
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kInconsistentEngineId), 1u);
}

TEST(Filters, TooShortEngineId) {
  auto record = good_record();
  record.first.engine_id = EngineId(util::Bytes{0x01, 0x02, 0x03});
  record.second.engine_id = record.first.engine_id;
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kTooShortEngineId), 1u);
  // Exactly 4 bytes passes (keeps IPv4-derived engine IDs, paper §4.4).
  auto four = good_record();
  four.first.engine_id = EngineId(util::Bytes{0x01, 0x02, 0x03, 0x04});
  four.second.engine_id = four.first.engine_id;
  const auto report4 = run({four});
  EXPECT_EQ(report4.dropped_at(FilterStage::kTooShortEngineId), 0u);
}

TEST(Filters, PromiscuousPayloadAcrossEnterprises) {
  // Same payload bytes under two enterprise numbers -> both dropped.
  const util::Bytes payload = {0xde, 0xad, 0xbe, 0xef, 0x42};
  auto a = good_record(1);
  a.first.engine_id = EngineId::make_octets(net::kPenCisco, payload);
  a.second.engine_id = a.first.engine_id;
  auto b = good_record(2);
  b.first.engine_id = EngineId::make_octets(net::kPenHuawei, payload);
  b.second.engine_id = b.first.engine_id;
  auto c = good_record(3);  // unique payload, survives
  c.first.engine_id =
      EngineId::make_octets(net::kPenCisco, util::Bytes{1, 2, 3, 4, 5});
  c.second.engine_id = c.first.engine_id;

  std::vector<JoinedRecord> survivors;
  const auto report = run({a, b, c}, &survivors);
  EXPECT_EQ(report.dropped_at(FilterStage::kPromiscuousEngineId), 2u);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].address, c.address);
}

TEST(Filters, SamePayloadSameEnterpriseIsNotPromiscuous) {
  const util::Bytes payload = {0xde, 0xad, 0xbe, 0xef, 0x42};
  auto a = good_record(1);
  a.first.engine_id = EngineId::make_octets(net::kPenCisco, payload);
  a.second.engine_id = a.first.engine_id;
  auto b = good_record(2);
  b.first.engine_id = a.first.engine_id;
  b.second.engine_id = a.first.engine_id;
  const auto report = run({a, b});
  EXPECT_EQ(report.dropped_at(FilterStage::kPromiscuousEngineId), 0u);
}

TEST(Filters, UnroutableIpv4EngineId) {
  auto record = good_record();
  record.first.engine_id =
      EngineId::make_ipv4(net::kPenCisco, net::Ipv4(10, 0, 0, 1));
  record.second.engine_id = record.first.engine_id;
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kUnroutableIpv4), 1u);

  auto routable = good_record();
  routable.first.engine_id =
      EngineId::make_ipv4(net::kPenCisco, net::Ipv4(8, 8, 8, 8));
  routable.second.engine_id = routable.first.engine_id;
  EXPECT_EQ(run({routable}).output, 1u);
}

TEST(Filters, UnregisteredMacEngineId) {
  auto record = good_record();
  record.first.engine_id = EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0xdeadbe, 0x1234));
  record.second.engine_id = record.first.engine_id;
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kUnregisteredMac), 1u);
}

TEST(Filters, ZeroTimeOrBoots) {
  auto zero_boots = good_record(1);
  zero_boots.first.engine_boots = 0;
  zero_boots.second.engine_boots = 0;
  auto zero_time = good_record(2);
  zero_time.first.engine_time = 0;
  const auto report = run({zero_boots, zero_time});
  EXPECT_EQ(report.dropped_at(FilterStage::kZeroTimeOrBoots), 2u);
}

TEST(Filters, FutureEngineTime) {
  auto record = good_record();
  // engineTime exceeding seconds-since-1970 implies a reboot before 1970.
  record.first.engine_time = 0x70000000u;
  record.second.engine_time = 0x70000000u;
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kFutureEngineTime), 1u);
}

TEST(Filters, InconsistentBoots) {
  auto record = good_record();
  record.second.engine_boots = record.first.engine_boots + 1;  // rebooted
  const auto report = run({record});
  EXPECT_EQ(report.dropped_at(FilterStage::kInconsistentBoots), 1u);
}

TEST(Filters, RebootDriftThreshold) {
  auto drifted = good_record(1);
  drifted.second.engine_time += 11;  // last reboot shifts by 11 s
  auto borderline = good_record(2);
  borderline.second.engine_time += 10;  // exactly at the threshold: kept
  std::vector<JoinedRecord> survivors;
  const auto report = run({drifted, borderline}, &survivors);
  EXPECT_EQ(report.dropped_at(FilterStage::kInconsistentReboot), 1u);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].address, borderline.address);
}

TEST(Filters, ThresholdIsConfigurable) {
  auto drifted = good_record();
  drifted.second.engine_time += 25;
  FilterOptions loose;
  loose.reboot_threshold_seconds = 30.0;
  EXPECT_EQ(run({drifted}, nullptr, loose).output, 1u);
}

TEST(Filters, DropAccountingSumsToInput) {
  std::vector<JoinedRecord> records;
  for (std::uint32_t i = 0; i < 50; ++i) records.push_back(good_record(i));
  records[3].first.engine_id = EngineId();
  records[3].second.engine_id = EngineId();
  records[7].second.engine_boots += 2;
  records[9].first.engine_time = 0;
  const auto report = run(records);
  EXPECT_EQ(report.input, 50u);
  EXPECT_EQ(report.input - report.total_dropped(), report.output);
  EXPECT_EQ(report.output, 47u);
}

TEST(Filters, Idempotent) {
  std::vector<JoinedRecord> records;
  for (std::uint32_t i = 0; i < 30; ++i) records.push_back(good_record(i));
  records[5].second.engine_boots += 1;
  FilterPipeline pipeline;
  pipeline.apply(records);
  const auto second_pass = pipeline.apply(records);
  EXPECT_EQ(second_pass.total_dropped(), 0u);  // nothing more to remove
}

TEST(Filters, ValidEngineIdCountExcludesTimeStages) {
  auto bad_id = good_record(1);
  bad_id.first.engine_id = EngineId();
  bad_id.second.engine_id = EngineId();
  auto bad_time = good_record(2);
  bad_time.second.engine_boots += 1;
  const auto report = run({bad_id, bad_time, good_record(3)});
  // bad_time has a VALID engine ID even though its time fields fail.
  EXPECT_EQ(report.valid_engine_id_count(), 2u);
  EXPECT_EQ(report.output, 1u);
}

TEST(Filters, StageNamesAreDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kFilterStageCount; ++i)
    names.insert(to_string(static_cast<FilterStage>(i)));
  EXPECT_EQ(names.size(), kFilterStageCount);
}

}  // namespace
}  // namespace snmpv3fp::core
