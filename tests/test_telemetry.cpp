// The live telemetry layer's contracts (obs/timeline, obs/flight,
// obs/status, obs/trace_export):
//  1. EXECUTION-ONLY: PipelineResult is bit-identical with telemetry fully
//     armed or absent, store-backed or in-RAM, at 1/2/8 threads.
//  2. Virtual-clock timeline samples are deterministic: same seed => the
//     same series (times AND values) at any thread count.
//  3. The emitted JSON documents (chrome trace, status.json, timeline
//     section, flight dump) round-trip through obs::JsonValue and carry
//     their documented schemas.
//  4. A hostile corpus (corrupted responses) drives fault-surge flight
//     dumps, and the dump file lands atomically with the events in it.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "obs/fileio.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/status.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "scan/campaign.hpp"
#include "topo/generator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp {
namespace {

std::string temp_path(const std::string& name) {
  const auto path = ::testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- the execution-only contract ------------------------------------------

// Small-but-parallel world (mirrors tests/test_obs.cpp): several chunks
// per parallel stage, fast enough for a handful of full pipeline runs.
topo::WorldConfig mid_size_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 11;
  config.router_scale = 120.0;
  config.mega_scale = 120.0;
  config.device_scale = 1200.0;
  config.tail_as_count = 80;
  return config;
}

// Order-sensitive digest over everything the paper's analyses consume:
// every scan record field (streamed, so store-backed results digest the
// same bytes), the filter funnel, and the fingerprinted device list.
std::uint64_t digest_result(const core::PipelineResult& result) {
  std::uint64_t digest = 0x5eed;
  const auto fold_scan = [&](const scan::ScanResult& scan) {
    digest = util::hash_combine(digest, scan.start_time);
    digest = util::hash_combine(digest, scan.end_time);
    digest = util::hash_combine(digest, scan.targets_probed);
    (void)scan.for_each_record([&](const scan::ScanRecord& record) {
      digest = util::hash_combine(digest,
                                  util::fnv1a64(record.target.to_string()));
      digest = util::hash_combine(
          digest, util::fnv1a64(record.engine_id.to_hex()));
      digest = util::hash_combine(digest, record.engine_boots);
      digest = util::hash_combine(digest, record.engine_time);
      digest = util::hash_combine(
          digest, static_cast<std::uint64_t>(record.send_time));
      digest = util::hash_combine(
          digest, static_cast<std::uint64_t>(record.receive_time));
      digest = util::hash_combine(digest, record.response_count);
    });
  };
  for (const auto* pair : {&result.v4_campaign, &result.v6_campaign}) {
    fold_scan(pair->scan1);
    fold_scan(pair->scan2);
    digest = util::hash_combine(digest, pair->fabric_stats.datagrams_sent);
    digest = util::hash_combine(digest, pair->fabric_stats.probes_lost);
  }
  for (const auto* report : {&result.v4_report, &result.v6_report}) {
    digest = util::hash_combine(digest, report->input);
    for (const auto dropped : report->dropped)
      digest = util::hash_combine(digest, dropped);
    digest = util::hash_combine(digest, report->output);
  }
  for (const auto& device : result.devices) {
    digest = util::hash_combine(digest, util::fnv1a64(device.fingerprint.vendor));
    digest = util::hash_combine(
        digest, static_cast<std::uint64_t>(device.is_router));
  }
  return digest;
}

struct TelemetryRun {
  std::uint64_t digest = 0;
  obs::TimelineSnapshot timeline;
  std::uint64_t flight_dumps = 0;
  std::uint64_t status_writes = 0;
};

// One pipeline run; `telemetry` (when set) arms every surface with file
// outputs under a run-unique temp directory.
TelemetryRun run_pipeline(std::size_t threads, bool telemetry,
                          const std::string& store_dir = {},
                          const std::string& tag = {}) {
  obs::RunObserver observer;
  core::PipelineOptions options;
  options.world = mid_size_world();
  options.parallel.threads = threads;
  options.store.dir = store_dir;
  TelemetryRun out;
  if (telemetry) {
    options.obs.observer = &observer;
    const std::string dir = temp_path("telemetry_" + tag);
    std::filesystem::create_directories(dir);
    obs::TelemetryOptions config;
    config.timeline.sample_every_virtual = 30 * util::kSecond;
    config.flight.dump_path = dir + "/flight.json";
    config.flight.ring_capacity = 64;
    config.status.path = dir + "/status.json";
    config.status.every_n_targets = 64;
    config.status.min_write_interval_ms = 0.0;  // never skip a write
    observer.configure_telemetry(config);
  }
  const auto result = core::run_full_pipeline(options);
  out.digest = digest_result(result);
  if (telemetry) {
    out.timeline = observer.timeline().snapshot();
    out.flight_dumps = observer.flight().dump_count();
    out.status_writes = observer.status().writes();
  }
  return out;
}

TEST(TelemetryContract, BitIdenticalOnOffStoreOnOffAcrossThreads) {
  const auto baseline = run_pipeline(1, false);

  // Telemetry fully armed, in-RAM records, three thread counts.
  const auto on1 = run_pipeline(1, true, {}, "on1");
  const auto on2 = run_pipeline(2, true, {}, "on2");
  const auto on8 = run_pipeline(8, true, {}, "on8");
  EXPECT_EQ(on1.digest, baseline.digest);
  EXPECT_EQ(on2.digest, baseline.digest);
  EXPECT_EQ(on8.digest, baseline.digest);

  // Store-backed records, telemetry off vs fully armed.
  const auto store_off = run_pipeline(1, false, temp_path("tel_store_off"));
  const auto store_on =
      run_pipeline(2, true, temp_path("tel_store_on"), "store_on");
  EXPECT_EQ(store_off.digest, baseline.digest);
  EXPECT_EQ(store_on.digest, baseline.digest);

  // ...and the telemetry actually observed the run.
  EXPECT_FALSE(on1.timeline.series.empty());
  EXPECT_GT(on1.flight_dumps, 0u);
  EXPECT_GT(on1.status_writes, 0u);

  // Virtual timeline samples are deterministic: identical series (stages,
  // shards, boundary times AND channel values) at every thread count, and
  // unchanged by the store backend (resident-bytes channel excepted — the
  // in-RAM runs report -1 there, so compare the in-RAM runs directly).
  ASSERT_EQ(on2.timeline.series.size(), on1.timeline.series.size());
  EXPECT_EQ(on2.timeline.series, on1.timeline.series);
  EXPECT_EQ(on8.timeline.series, on1.timeline.series);
}

// ---- timeline unit behaviour ----------------------------------------------

TEST(Timeline, VirtualSamplesLandOnAbsoluteBoundaries) {
  obs::Timeline timeline;
  obs::TimelineConfig config;
  config.sample_every_virtual = util::kSecond;
  timeline.configure(config, nullptr);
  auto recorder = timeline.recorder("stage", 0);

  obs::TimelinePoint point;
  point.targets_sent = 1;
  recorder.tick(util::kSecond / 2, point);  // before the first boundary
  point.targets_sent = 2;
  recorder.tick(3 * util::kSecond / 2, point);  // crosses 1s
  point.targets_sent = 3;
  recorder.tick(7 * util::kSecond / 4, point);  // still inside [1s, 2s)
  point.targets_sent = 4;
  recorder.tick(4 * util::kSecond, point);  // skips ahead: one point at 4s

  const auto snapshot = timeline.snapshot();
  ASSERT_EQ(snapshot.series.size(), 1u);
  const auto& points = snapshot.series[0].points;
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t, util::kSecond);
  EXPECT_EQ(points[0].targets_sent, 2u);
  EXPECT_EQ(points[1].t, 4 * util::kSecond);
  EXPECT_EQ(points[1].targets_sent, 4u);
}

TEST(Timeline, TrackCapCountsDroppedPoints) {
  obs::Timeline timeline;
  obs::TimelineConfig config;
  config.sample_every_virtual = util::kSecond;
  config.max_points_per_track = 2;
  timeline.configure(config, nullptr);
  auto recorder = timeline.recorder("stage", 0);
  for (int i = 1; i <= 5; ++i)
    recorder.tick(i * util::kSecond, obs::TimelinePoint{});
  const auto snapshot = timeline.snapshot();
  ASSERT_EQ(snapshot.series.size(), 1u);
  EXPECT_EQ(snapshot.series[0].points.size(), 2u);
  EXPECT_EQ(snapshot.dropped_points, 3u);
}

TEST(Timeline, JsonRoundTripsThroughParser) {
  obs::Timeline timeline;
  obs::TimelineConfig config;
  config.sample_every_virtual = util::kSecond;
  timeline.configure(config, nullptr);
  auto recorder = timeline.recorder("v4.scan1", 3);
  obs::TimelinePoint point;
  point.targets_sent = 10;
  point.responses = 4;
  point.pacer_rate_pps = 5000.0;
  recorder.tick(2 * util::kSecond, point);

  const auto doc = obs::JsonValue::parse(timeline.snapshot().to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* series = doc->find("virtual");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items().size(), 1u);
  const auto& track = series->items()[0];
  EXPECT_EQ(track.find("stage")->as_string(), "v4.scan1");
  EXPECT_EQ(track.find("shard")->as_number(), 3.0);
  const auto& points = track.find("points")->items();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].find("t_s")->as_number(), 2.0);
  EXPECT_EQ(points[0].find("sent")->as_number(), 10.0);
  EXPECT_EQ(points[0].find("responses")->as_number(), 4.0);
  EXPECT_EQ(points[0].find("rate_pps")->as_number(), 5000.0);
}

// ---- status surface --------------------------------------------------------

TEST(Status, JsonSchemaAndDashboardRoundTrip) {
  const std::string path = temp_path("status_rt.json");
  obs::StatusBoard board;
  obs::StatusConfig config;
  config.path = path;
  config.min_write_interval_ms = 0.0;
  board.configure(config);

  auto shard0 = board.add_shard("v4.scan1", 0, 100);
  auto shard1 = board.add_shard("v4.scan1", 1, 100);
  obs::ShardStatusRow row;
  row.targets_sent = 40;
  row.responses = 10;
  row.pacer_rate_pps = 2000.0;
  row.virtual_now = 3 * util::kSecond;
  shard0.update(row);
  row.targets_sent = 100;
  row.complete = true;
  shard1.update(row);
  ASSERT_TRUE(board.write_now());

  const auto doc = obs::JsonValue::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("schema")->as_number(), 1.0);
  EXPECT_FALSE(doc->find("complete")->as_bool());
  const auto* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("targets_total")->as_number(), 200.0);
  EXPECT_EQ(totals->find("targets_sent")->as_number(), 140.0);
  const auto* shards = doc->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items().size(), 2u);
  EXPECT_EQ(shards->items()[0].find("stage")->as_string(), "v4.scan1");
  // ETA for shard 0: 60 targets left at 2000 pps.
  EXPECT_NEAR(shards->items()[0].find("eta_s")->as_number(), 0.03, 1e-9);

  const std::string dashboard = obs::render_status_dashboard(*doc);
  EXPECT_NE(dashboard.find("v4.scan1"), std::string::npos);
  EXPECT_NE(dashboard.find("running"), std::string::npos);

  // mark_stage_complete flips every slot and the file.
  board.mark_stage_complete("v4.scan1");
  const auto done = obs::JsonValue::parse(slurp(path));
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->find("complete")->as_bool());
  EXPECT_NE(obs::render_status_dashboard(*done).find("COMPLETE"),
            std::string::npos);
}

// ---- chrome trace export ---------------------------------------------------

TEST(TraceExport, ChromeTraceSchemaRoundTrips) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "pipeline.v4.scan1");
    obs::Span inner(&trace, "pipeline.v4.scan1.shard0");
    inner.set_shard(0);
    inner.set_virtual_duration(5 * util::kSecond);
  }
  obs::FlightRecorder flight;
  obs::FlightConfig config;
  flight.configure(config);
  auto handle = flight.handle("pipeline.v4.scan1", 0);
  handle.record(obs::FlightEventKind::kCheckpoint, 2 * util::kSecond, 128);

  const std::string json =
      obs::to_chrome_trace_json(trace.snapshot(), flight.events());
  const auto doc = obs::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("displayTimeUnit")->as_string(), "ms");
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t complete = 0, instant = 0, metadata = 0;
  for (const auto& event : events->items()) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    const auto& ph = event.find("ph")->as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_NE(event.find("name"), nullptr);
      EXPECT_NE(event.find("ts"), nullptr);
      EXPECT_NE(event.find("dur"), nullptr);
    } else if (ph == "i") {
      ++instant;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 2u);   // the two spans
  EXPECT_EQ(instant, 1u);    // the flight event
  EXPECT_GT(metadata, 0u);   // thread-name tracks
}

// ---- flight recorder -------------------------------------------------------

TEST(Flight, RingWrapsAndDumpIsAtomicJson) {
  const std::string path = temp_path("flight_rt.json");
  obs::FlightRecorder flight;
  obs::FlightConfig config;
  config.ring_capacity = 4;
  config.dump_path = path;
  flight.configure(config);
  auto handle = flight.handle("stage", 2);
  for (int i = 0; i < 10; ++i)
    handle.record(obs::FlightEventKind::kNote, i * util::kSecond, i);
  EXPECT_EQ(flight.dropped(), 6u);
  ASSERT_TRUE(flight.dump("unit_test"));
  EXPECT_EQ(flight.dump_count(), 1u);

  const auto doc = obs::JsonValue::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_number(), 1.0);
  EXPECT_EQ(doc->find("reason")->as_string(), "unit_test");
  EXPECT_EQ(doc->find("dropped")->as_number(), 6.0);
  const auto* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 4u);  // the ring kept the last 4
  for (const auto& event : events->items()) {
    EXPECT_EQ(event.find("kind")->as_string(), "note");
    EXPECT_EQ(event.find("stage")->as_string(), "stage");
    EXPECT_EQ(event.find("shard")->as_number(), 2.0);
    EXPECT_GE(event.find("seq")->as_number(), 6.0);
  }
}

TEST(Flight, HostileCorpusTriggersFaultSurgeDumps) {
  auto world = topo::generate_world(topo::WorldConfig::tiny());
  obs::RunObserver observer;
  obs::TelemetryOptions telemetry;
  const std::string dir = temp_path("flight_surge");
  std::filesystem::create_directories(dir);
  telemetry.flight.dump_path = dir + "/flight.json";
  telemetry.flight.ring_capacity = 32;
  telemetry.flight.fault_surge_threshold = 4;
  observer.configure_telemetry(telemetry);

  scan::CampaignOptions options;
  options.seed = 1234;
  options.fabric.faults.response_corrupt_rate = 0.5;  // hostile corpus
  options.obs.observer = &observer;
  options.obs.scope = "v4";
  const auto pair = scan::run_two_scan_campaign(world, options);

  // Corrupted responses reached the prober and were rejected...
  EXPECT_GT(pair.scan1.undecodable_responses +
                pair.scan2.undecodable_responses,
            4u);
  // ...so at least one surge dump fired during the scan (plus campaign
  // exit), and the final file is valid JSON with undecodable events.
  EXPECT_GT(observer.flight().dump_count(), 1u);
  const auto doc = obs::JsonValue::parse(slurp(telemetry.flight.dump_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("reason")->as_string(), "exit");
  bool saw_undecodable = false;
  for (const auto& event : doc->find("events")->items())
    saw_undecodable |= event.find("kind")->as_string() == "undecodable";
  EXPECT_TRUE(saw_undecodable);
}

// ---- percentiles + report integration --------------------------------------

TEST(Metrics, HistogramPercentilesInterpolate) {
  obs::MetricsSnapshot::HistogramRow row;
  row.bounds = {10.0, 20.0, 40.0};
  row.counts = {10, 10, 0, 0};  // 20 observations, none past 20
  row.total = 20;
  // Rank 10 sits exactly at the first bucket's upper edge.
  EXPECT_NEAR(row.p50(), 10.0, 1e-9);
  // Rank 18 is 80% into the second bucket: 10 + 0.8 * (20 - 10).
  EXPECT_NEAR(row.p90(), 18.0, 1e-9);
  // Empty histogram: all percentiles are 0.
  obs::MetricsSnapshot::HistogramRow empty;
  empty.bounds = {1.0};
  empty.counts = {0, 0};
  EXPECT_EQ(empty.p99(), 0.0);
  // Overflow-heavy histogram clamps to the last finite bound.
  obs::MetricsSnapshot::HistogramRow overflow;
  overflow.bounds = {10.0};
  overflow.counts = {0, 100};
  overflow.total = 100;
  EXPECT_EQ(overflow.p50(), 10.0);
}

TEST(Report, TimeSeriesSectionRendersInRunReport) {
  obs::RunObserver observer;
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  options.obs.observer = &observer;
  obs::TelemetryOptions telemetry;
  telemetry.timeline.sample_every_virtual = 30 * util::kSecond;
  observer.configure_telemetry(telemetry);
  const auto result = core::run_full_pipeline(options);
  const auto report = core::build_run_report(result, options, &observer);

  const auto doc = obs::JsonValue::parse(report.to_json());
  ASSERT_TRUE(doc.has_value());
  const auto* time_series = doc->find("time_series");
  ASSERT_NE(time_series, nullptr);
  ASSERT_TRUE(time_series->is_object());
  const auto* series = time_series->find("virtual");
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->items().empty());
  // The probe-RTT histogram observed responses, and its percentile columns
  // made it into both renderings.
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  bool saw_rtt = false;
  for (const auto& [name, value] : histograms->members()) {
    if (name.find("rtt_ms") == std::string::npos) continue;
    saw_rtt = true;
    EXPECT_NE(value.find("p50"), nullptr);
    EXPECT_NE(value.find("p99"), nullptr);
    EXPECT_GT(value.find("total")->as_number(), 0.0);
  }
  EXPECT_TRUE(saw_rtt);
  EXPECT_NE(report.to_table().find("Timeline:"), std::string::npos);
}

}  // namespace
}  // namespace snmpv3fp
