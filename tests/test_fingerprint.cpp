#include <gtest/gtest.h>

#include "core/fingerprint.hpp"
#include "net/registry.hpp"

namespace snmpv3fp::core {
namespace {

using snmp::EngineId;

TEST(Fingerprint, MacOuiWins) {
  const auto fp = fingerprint_engine_id(EngineId::make_mac(
      net::kPenBrocade, net::MacAddress::from_oui(0x748ef8, 0x31db80)));
  EXPECT_EQ(fp.vendor, "Brocade");
  EXPECT_EQ(fp.source, FingerprintSource::kMacOui);
}

TEST(Fingerprint, OuiOverridesMismatchedEnterprise) {
  // Enterprise says Huawei, the MAC block says Cisco: OUI wins (paper: the
  // MAC gives the highest-confidence vendor signal).
  const auto fp = fingerprint_engine_id(EngineId::make_mac(
      net::kPenHuawei, net::MacAddress::from_oui(0x00000c, 0x1234)));
  EXPECT_EQ(fp.vendor, "Cisco");
  EXPECT_EQ(fp.source, FingerprintSource::kMacOui);
}

TEST(Fingerprint, UnknownOuiFallsBackToEnterprise) {
  const auto fp = fingerprint_engine_id(EngineId::make_mac(
      net::kPenHuawei, net::MacAddress::from_oui(0xdeadbe, 0x1234)));
  EXPECT_EQ(fp.vendor, "Huawei");
  EXPECT_EQ(fp.source, FingerprintSource::kEnterprise);
}

TEST(Fingerprint, ConstantBugValueIdentifiesCiscoViaEnterprise) {
  const EngineId id{util::from_hex("800000090300000000000000").value()};
  const auto fp = fingerprint_engine_id(id);
  EXPECT_EQ(fp.vendor, "Cisco");
  EXPECT_EQ(fp.source, FingerprintSource::kEnterprise);
}

TEST(Fingerprint, ZeroMacSkipsOuiLookup) {
  // A well-formed zero MAC (11 bytes) would map to the registry's 00:00:00
  // block; the fingerprinter must not trust a zero MAC.
  const auto fp = fingerprint_engine_id(EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x000000, 0x000000)));
  EXPECT_EQ(fp.vendor, "Cisco");
  EXPECT_EQ(fp.source, FingerprintSource::kEnterprise);
}

TEST(Fingerprint, NetSnmpScheme) {
  const auto fp = fingerprint_engine_id(EngineId::make_netsnmp(0xfeedbeef));
  EXPECT_EQ(fp.vendor, "Net-SNMP");
  EXPECT_EQ(fp.source, FingerprintSource::kNetSnmp);
}

TEST(Fingerprint, TextAndOctetsUseEnterprise) {
  const auto text = fingerprint_engine_id(
      EngineId::make_text(net::kPenJuniper, "cr1.example.net"));
  EXPECT_EQ(text.vendor, "Juniper");
  EXPECT_EQ(text.source, FingerprintSource::kEnterprise);
  const auto octets = fingerprint_engine_id(
      EngineId::make_octets(net::kPenH3c, util::Bytes{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(octets.vendor, "H3C");
}

TEST(Fingerprint, Ipv4FormatUsesEnterprise) {
  const auto fp = fingerprint_engine_id(
      EngineId::make_ipv4(2011, net::Ipv4(8, 8, 8, 8)));
  EXPECT_EQ(fp.vendor, "Huawei");
}

TEST(Fingerprint, NonConformingIsUnknown) {
  const auto fp = fingerprint_engine_id(
      EngineId::make_nonconforming(util::Bytes{0x03, 0x00, 0xe0, 0xac}));
  EXPECT_EQ(fp.vendor, "Unknown");
  EXPECT_EQ(fp.source, FingerprintSource::kUnknown);
}

TEST(Fingerprint, UnknownEnterpriseIsUnknown) {
  const auto fp = fingerprint_engine_id(
      EngineId::make_octets(4242424, util::Bytes{1, 2, 3, 4}));
  EXPECT_EQ(fp.vendor, "Unknown");
}

TEST(Fingerprint, EmptyIsUnknown) {
  EXPECT_EQ(fingerprint_engine_id(EngineId()).vendor, "Unknown");
}

TEST(Fingerprint, SourceNames) {
  EXPECT_EQ(to_string(FingerprintSource::kMacOui), "MAC OUI");
  EXPECT_EQ(to_string(FingerprintSource::kEnterprise), "Enterprise ID");
}

}  // namespace
}  // namespace snmpv3fp::core
