// The wire fast path's two contracts (src/wire):
//  1. ProbeTemplate::stamp and encode_report_into are byte-identical to the
//     full codec's encode for every input they accept.
//  2. FastReportParser accepts a subset of V3Message::decode with equal
//     fields — fast-accept implies full-accept, never the other way round
//     ("the fast path and the full codec must never disagree"), fuzzed over
//     a 10k+ mutation corpus.
// Plus the end-to-end consequences: a clean campaign never falls back, and
// the pipeline is bit-identical with the fast path on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "sim/agent.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"
#include "snmp/message.hpp"
#include "topo/generator.hpp"
#include "util/rng.hpp"
#include "wire/probe_template.hpp"
#include "wire/report_codec.hpp"

namespace snmpv3fp {
namespace {

using snmp::EngineId;
using snmp::V3Message;
using util::Bytes;
using util::ByteView;

// ---------------------------------------------------------------------------
// ProbeTemplate: stamped bytes == full encode
// ---------------------------------------------------------------------------

TEST(WireTemplate, BuildsValidSixtyByteTemplate) {
  const wire::ProbeTemplate tmpl;
  ASSERT_TRUE(tmpl.valid());
  EXPECT_EQ(tmpl.size(), 60u);  // the paper's discovery payload size
  EXPECT_NE(tmpl.msg_id_offset(), tmpl.request_id_offset());
}

TEST(WireTemplate, StampMatchesFullEncodeAcrossIdRange) {
  const wire::ProbeTemplate tmpl;
  ASSERT_TRUE(tmpl.valid());
  Bytes stamped;
  util::Rng rng(7);
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs = {
      {wire::kMinTwoByteId, wire::kMinTwoByteId},
      {wire::kMinTwoByteId, wire::kMaxTwoByteId},
      {wire::kMaxTwoByteId, wire::kMinTwoByteId},
      {wire::kMaxTwoByteId, wire::kMaxTwoByteId},
      {0x1234, 0x1234},  // the template's own reference ids
      {0x7fff, 0x0080},
  };
  for (int i = 0; i < 500; ++i)
    pairs.emplace_back(
        static_cast<std::int32_t>(
            wire::kMinTwoByteId +
            rng.next_below(wire::kMaxTwoByteId - wire::kMinTwoByteId + 1)),
        static_cast<std::int32_t>(
            wire::kMinTwoByteId +
            rng.next_below(wire::kMaxTwoByteId - wire::kMinTwoByteId + 1)));
  for (const auto& [msg_id, request_id] : pairs) {
    ASSERT_TRUE(tmpl.stamp(msg_id, request_id, stamped));
    const Bytes full =
        snmp::make_discovery_request(msg_id, request_id).encode();
    ASSERT_EQ(stamped, full) << "msg_id=" << msg_id
                             << " request_id=" << request_id;
  }
}

TEST(WireTemplate, RejectsIdsOutsideTwoByteRange) {
  const wire::ProbeTemplate tmpl;
  Bytes out;
  EXPECT_FALSE(tmpl.stamp(wire::kMinTwoByteId - 1, 1000, out));
  EXPECT_FALSE(tmpl.stamp(1000, wire::kMinTwoByteId - 1, out));
  EXPECT_FALSE(tmpl.stamp(wire::kMaxTwoByteId + 1, 1000, out));
  EXPECT_FALSE(tmpl.stamp(1000, wire::kMaxTwoByteId + 1, out));
  EXPECT_FALSE(tmpl.stamp(-1, -1, out));
}

TEST(WireTemplate, StampReusesBufferCapacity) {
  const wire::ProbeTemplate tmpl;
  Bytes out;
  ASSERT_TRUE(tmpl.stamp(1000, 2000, out));
  const auto* data = out.data();
  const auto capacity = out.capacity();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tmpl.stamp(1000 + i, 2000 + i, out));
    EXPECT_EQ(out.data(), data);          // no reallocation
    EXPECT_EQ(out.capacity(), capacity);  // no growth
  }
}

// ---------------------------------------------------------------------------
// FastReportParser: field equality with the full decoder
// ---------------------------------------------------------------------------

void expect_fields_match(const wire::V3Fields& fast, const V3Message& full) {
  EXPECT_EQ(fast.msg_id, full.header.msg_id);
  EXPECT_EQ(fast.msg_flags, full.header.msg_flags);
  EXPECT_TRUE(util::equal(fast.engine_id,
                          ByteView(full.usm.authoritative_engine_id.raw())));
  EXPECT_EQ(fast.engine_boots, full.usm.engine_boots);
  EXPECT_EQ(fast.engine_time, full.usm.engine_time);
  EXPECT_EQ(std::string(fast.user_name.begin(), fast.user_name.end()),
            full.usm.user_name);
  EXPECT_EQ(fast.pdu_tag,
            0xa0 | static_cast<std::uint8_t>(full.scoped_pdu.pdu.type));
  EXPECT_EQ(fast.request_id, full.scoped_pdu.pdu.request_id);
}

std::vector<EngineId> engine_zoo() {
  util::Rng rng(13);
  std::vector<EngineId> zoo = {
      EngineId(),  // the empty-engine-ID bug
      EngineId::make_mac(9, net::MacAddress::from_oui(0x00000c, 0x31db80)),
      EngineId::make_ipv4(2636, net::Ipv4(198, 51, 100, 7)),
      EngineId::make_text(8072, "router-7.example"),
      EngineId::make_netsnmp(0x1122334455667788ull),
      EngineId::make_nonconforming(Bytes{0x01, 0x02, 0x03}),
  };
  // Arbitrary raw engine IDs: every length 1..36 (nonconforming lengths
  // included — the decoder does not length-check, so neither may we).
  for (std::size_t len = 1; len <= 36; ++len) {
    Bytes raw(len);
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
    zoo.emplace_back(std::move(raw));
  }
  return zoo;
}

TEST(WireFastParse, DiscoveryRequestFieldsMatchFullDecode) {
  const Bytes payload = snmp::make_discovery_request(1000, 2000).encode();
  wire::V3Fields fast;
  ASSERT_TRUE(wire::parse_v3_fast(payload, fast));
  const auto full = V3Message::decode(payload);
  ASSERT_TRUE(full.ok());
  expect_fields_match(fast, full.value());
  EXPECT_TRUE(fast.engine_id.empty());
  EXPECT_EQ(fast.msg_id, 1000);
  EXPECT_EQ(fast.request_id, 2000);
}

TEST(WireFastParse, ReportFieldsMatchFullDecodeAcrossEngineFormats) {
  const auto request = snmp::make_discovery_request(300, 400);
  const std::uint32_t extremes[] = {0u, 1u, 0x7fffffffu, 0x80000000u,
                                    0xffffffffu};
  for (const auto& engine : engine_zoo()) {
    for (const std::uint32_t boots : extremes) {
      for (const std::uint32_t time : extremes) {
        for (const auto* oid : {&snmp::kOidUsmStatsUnknownEngineIds,
                                &snmp::kOidUsmStatsUnknownUserNames}) {
          const Bytes payload =
              snmp::make_discovery_report(request, engine, boots, time,
                                          0xdeadbeefu, *oid)
                  .encode();
          wire::V3Fields fast;
          ASSERT_TRUE(wire::parse_v3_fast(payload, fast))
              << "engine len=" << engine.raw().size() << " boots=" << boots
              << " time=" << time;
          const auto full = V3Message::decode(payload);
          ASSERT_TRUE(full.ok());
          expect_fields_match(fast, full.value());
          EXPECT_EQ(fast.engine_boots, boots);
          EXPECT_EQ(fast.engine_time, time);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz: fast-accept implies full-accept with equal fields
// ---------------------------------------------------------------------------

TEST(WireFastParse, DifferentialFuzzNeverDisagreesWithFullDecoder) {
  util::Rng rng(20210413);
  // Seed corpus: the payloads the census actually exchanges.
  std::vector<Bytes> seeds;
  seeds.push_back(snmp::make_discovery_request(1000, 2000).encode());
  const auto request = snmp::make_discovery_request(555, 666);
  for (const auto& engine : engine_zoo())
    seeds.push_back(snmp::make_discovery_report(request, engine, 5, 86400,
                                                42)
                        .encode());

  std::size_t fast_accepts = 0;
  std::size_t checked = 0;
  const auto check = [&](ByteView payload) {
    ++checked;
    wire::V3Fields fast;
    bool fast_ok = false;
    EXPECT_NO_THROW(fast_ok = wire::parse_v3_fast(payload, fast));
    const auto full = V3Message::decode(payload);
    if (fast_ok) {
      ++fast_accepts;
      // The invariant: whatever the fast path accepts, the full decoder
      // accepts with the same fields.
      ASSERT_TRUE(full.ok())
          << "fast parser accepted a payload the full decoder rejects";
      expect_fields_match(fast, full.value());
    }
  };

  for (const auto& seed : seeds) check(seed);

  // Structured mutations: every fault kind over every seed, repeatedly.
  constexpr int kRoundsPerKind = 40;
  for (const auto& seed : seeds) {
    for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind)
      for (int round = 0; round < kRoundsPerKind; ++round)
        check(sim::apply_fault(seed, static_cast<sim::FaultKind>(kind), rng));
    // Every truncation length (the off-by-one hunting ground).
    for (std::size_t len = 0; len <= seed.size(); ++len)
      check(ByteView(seed).subspan(0, len));
    // Single-byte patches at every offset: each one hits a different
    // structural field (tag, length, content) of the message.
    Bytes patched = seed;
    for (std::size_t i = 0; i < patched.size(); ++i) {
      const auto saved = patched[i];
      patched[i] = static_cast<std::uint8_t>(rng.next());
      check(patched);
      patched[i] = saved;
    }
  }
  // Pure garbage of assorted sizes.
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.next_below(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    check(garbage);
  }

  EXPECT_GE(checked, 10000u) << "fuzz corpus shrank below the 10k floor";
  // Sanity: the corpus exercises the accept path too (all seeds, plus any
  // mutation that happens to stay well-formed).
  EXPECT_GE(fast_accepts, seeds.size());
}

// ---------------------------------------------------------------------------
// encode_report_into: byte-identical to the message-tree encoder
// ---------------------------------------------------------------------------

TEST(WireReportWriter, MatchesMessageEncode) {
  util::Rng rng(99);
  Bytes direct;
  const std::int32_t ids[] = {0, 1, 127, 128, 32767, 65536, 0x7fffffff,
                              -1, -32768};
  for (const auto& engine : engine_zoo()) {
    for (const std::int32_t msg_id : ids) {
      for (const std::int32_t request_id : {ids[rng.next_below(9)]}) {
        for (const auto* oid : {&snmp::kOidUsmStatsUnknownEngineIds,
                                &snmp::kOidUsmStatsUnknownUserNames}) {
          const std::uint32_t boots = static_cast<std::uint32_t>(rng.next());
          const std::uint32_t time = static_cast<std::uint32_t>(rng.next());
          const std::uint32_t counter =
              static_cast<std::uint32_t>(rng.next());
          const auto request =
              snmp::make_discovery_request(msg_id, request_id);
          const Bytes full = snmp::make_discovery_report(request, engine,
                                                         boots, time,
                                                         counter, *oid)
                                 .encode();
          wire::encode_report_into(direct, msg_id, request_id, engine.raw(),
                                   boots, time, counter, *oid);
          ASSERT_EQ(direct, full)
              << "engine len=" << engine.raw().size() << " msg_id=" << msg_id
              << " request_id=" << request_id;
        }
      }
    }
  }
}

TEST(WireReportWriter, ReusesBufferCapacity) {
  Bytes out;
  const EngineId engine =
      EngineId::make_mac(9, net::MacAddress::from_oui(0x00000c, 0x31db80));
  wire::encode_report_into(out, 1000, 2000, engine.raw(), 5, 86400, 42,
                           snmp::kOidUsmStatsUnknownEngineIds);
  const auto* data = out.data();
  for (int i = 0; i < 100; ++i) {
    wire::encode_report_into(out, 1000 + i, 2000 + i, engine.raw(), 5,
                             86400u + i, 42, snmp::kOidUsmStatsUnknownEngineIds);
    EXPECT_EQ(out.data(), data);  // same allocation every time
  }
}

// ---------------------------------------------------------------------------
// Transport view API: send_view/receive_view equal send/receive
// ---------------------------------------------------------------------------

TEST(WireTransport, FabricSendViewMatchesSend) {
  const auto world =
      topo::generate_world(topo::WorldConfig::tiny());
  sim::FabricConfig config;
  config.seed = 5;
  sim::Fabric by_send(world, config);
  sim::Fabric by_view(world, config);
  const net::Endpoint prober{net::Ipv4(198, 51, 100, 7), 54321};

  // Probe every v4 address in the world both ways.
  const auto addresses = world.addresses(net::Family::kIpv4);
  const wire::ProbeTemplate tmpl;
  Bytes payload;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const std::int32_t id =
        static_cast<std::int32_t>(1000 + (i % 30000));
    ASSERT_TRUE(tmpl.stamp(id, id, payload));
    const net::Endpoint target{addresses[i], net::kSnmpPort};
    net::Datagram datagram;
    datagram.source = prober;
    datagram.destination = target;
    datagram.payload = payload;
    datagram.time = by_send.now();
    by_send.send(std::move(datagram));
    by_view.send_view(prober, target, payload, by_view.now());
  }
  by_send.run_until(10 * util::kSecond);
  by_view.run_until(10 * util::kSecond);
  EXPECT_EQ(by_send.stats(), by_view.stats());

  // Same responses in the same order, whichever receive API reads them.
  while (true) {
    auto full = by_send.receive();
    auto view = by_view.receive_view();
    ASSERT_EQ(full.has_value(), view.has_value());
    if (!full.has_value()) break;
    EXPECT_EQ(full->source, view->source);
    EXPECT_EQ(full->time, view->time);
    EXPECT_TRUE(util::equal(ByteView(full->payload), view->payload));
  }
}

// ---------------------------------------------------------------------------
// Campaign: a clean corpus never touches the fallback decoder
// ---------------------------------------------------------------------------

TEST(WireCampaign, CleanCampaignHasZeroFallbacks) {
  auto world = topo::generate_world(topo::WorldConfig::tiny());
  obs::RunObserver observer;
  scan::CampaignOptions options;
  options.obs.observer = &observer;
  const auto pair = scan::run_two_scan_campaign(world, options);
  ASSERT_GT(pair.scan1.responsive(), 0u);

  std::uint64_t fast_parses = 0, fallbacks = 0, stamped = 0, full_encodes = 0;
  for (const auto& row : observer.metrics().snapshot().counters) {
    if (row.name.ends_with(".wire.fast_parses")) fast_parses += row.value;
    if (row.name.ends_with(".wire.parse_fallbacks")) fallbacks += row.value;
    if (row.name.ends_with(".wire.stamped_probes")) stamped += row.value;
    if (row.name.ends_with(".wire.full_encodes")) full_encodes += row.value;
  }
  // Every response the simulated agents emit is a well-formed REPORT: the
  // fast parser must take all of them. A nonzero fallback count means its
  // accept set regressed.
  EXPECT_GT(fast_parses, 0u);
  EXPECT_EQ(fallbacks, 0u);
  // Every probe id fits two bytes: all probes are template-stamped.
  EXPECT_GT(stamped, 0u);
  EXPECT_EQ(full_encodes, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline: bit-identical with the fast path on or off, at any threads
// ---------------------------------------------------------------------------

topo::WorldConfig mid_size_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 11;
  config.router_scale = 120.0;
  config.mega_scale = 120.0;
  config.device_scale = 1200.0;
  config.tail_as_count = 80;
  return config;
}

core::PipelineResult run_pipeline(bool wire_fast_path, std::size_t threads) {
  core::PipelineOptions options;
  options.world = mid_size_world();
  options.parallel.threads = threads;
  options.wire_fast_path = wire_fast_path;
  return core::run_full_pipeline(options);
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  EXPECT_EQ(a.probe_bytes, b.probe_bytes);
  EXPECT_EQ(a.undecodable_responses, b.undecodable_responses);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    ASSERT_EQ(ra.target, rb.target);
    EXPECT_EQ(ra.engine_id, rb.engine_id);
    EXPECT_EQ(ra.engine_boots, rb.engine_boots);
    EXPECT_EQ(ra.engine_time, rb.engine_time);
    EXPECT_EQ(ra.send_time, rb.send_time);
    EXPECT_EQ(ra.receive_time, rb.receive_time);
    EXPECT_EQ(ra.response_count, rb.response_count);
    EXPECT_EQ(ra.response_bytes, rb.response_bytes);
    EXPECT_EQ(ra.extra_engines, rb.extra_engines);
  }
}

void expect_identical(const core::PipelineResult& a,
                      const core::PipelineResult& b) {
  expect_same_scan(a.v4_campaign.scan1, b.v4_campaign.scan1);
  expect_same_scan(a.v4_campaign.scan2, b.v4_campaign.scan2);
  expect_same_scan(a.v6_campaign.scan1, b.v6_campaign.scan1);
  expect_same_scan(a.v6_campaign.scan2, b.v6_campaign.scan2);
  // Full data-plane accounting must agree: the fast paths feed identical
  // bytes through identical RNG-draw sequences.
  EXPECT_EQ(a.v4_campaign.fabric_stats, b.v4_campaign.fabric_stats);
  EXPECT_EQ(a.v6_campaign.fabric_stats, b.v6_campaign.fabric_stats);

  ASSERT_EQ(a.v4_records.size(), b.v4_records.size());
  ASSERT_EQ(a.v6_records.size(), b.v6_records.size());
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    ASSERT_EQ(a.resolution.sets[i].addresses, b.resolution.sets[i].addresses);
    EXPECT_EQ(a.resolution.sets[i].engine_id, b.resolution.sets[i].engine_id);
  }
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].fingerprint.vendor, b.devices[i].fingerprint.vendor);
    EXPECT_EQ(a.devices[i].is_router, b.devices[i].is_router);
  }
}

TEST(WirePipeline, BitIdenticalWithFastPathOnOrOffAcrossThreadCounts) {
  const auto slow_path = run_pipeline(false, 1);
  expect_identical(slow_path, run_pipeline(true, 1));
  expect_identical(slow_path, run_pipeline(true, 2));
  expect_identical(slow_path, run_pipeline(true, 8));
}

}  // namespace
}  // namespace snmpv3fp
