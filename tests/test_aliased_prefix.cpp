// Aliased IPv6 /64 detection (hitlist preprocessing, paper §4.1.1).
#include <gtest/gtest.h>

#include "scan/aliased_prefix.hpp"
#include "sim/fabric.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::scan {
namespace {

topo::World aliased_world() {
  topo::World world;
  topo::AutonomousSystem as;
  as.asn = 100;
  as.region = "EU";
  as.v4_prefix = net::Prefix4(net::Ipv4(60, 0, 0, 0), 16);
  as.v6_prefix = {0x2001, 0x64};
  world.ases.push_back(std::move(as));
  world.v4_cursor.assign(1, 0);

  const auto add_server = [&](std::uint16_t subnet, bool aliased) {
    topo::Device device;
    device.index = static_cast<topo::DeviceIndex>(world.devices.size());
    device.kind = topo::DeviceKind::kServer;
    device.vendor = &topo::vendor_profile("Net-SNMP");
    device.snmpv3_enabled = true;
    device.engine_id = snmp::EngineId::make_netsnmp(0x9000 + subnet);
    device.reboots = {-util::kDay};
    device.boots_before_history = 1;
    device.answers_whole_v6_prefix = aliased;
    topo::Interface itf;
    itf.mac = net::MacAddress::from_oui(0x001b21, subnet);
    itf.v6 = net::Ipv6::from_groups({0x2001, 0x64, subnet, 0, 0, 0, 0, 1});
    device.interfaces.push_back(std::move(itf));
    world.devices.push_back(std::move(device));
  };
  add_server(1, /*aliased=*/true);   // 2001:64:1::/64 answers everywhere
  add_server(2, /*aliased=*/false);  // 2001:64:2::1 only
  world.reindex();
  return world;
}

TEST(AliasedPrefix, Prefix64Key) {
  const auto a = net::Ipv6::parse("2001:64:1::1").value();
  const auto b = net::Ipv6::parse("2001:64:1::dead:beef").value();
  const auto c = net::Ipv6::parse("2001:64:2::1").value();
  EXPECT_EQ(prefix64_of(a), prefix64_of(b));
  EXPECT_NE(prefix64_of(a), prefix64_of(c));
}

TEST(AliasedPrefix, WorldAnswersRandomIidsOnlyInAliasedPrefix) {
  const auto world = aliased_world();
  const auto inside =
      net::Ipv6::parse("2001:64:1:0:1234:5678:9abc:def0").value();
  const auto outside =
      net::Ipv6::parse("2001:64:2:0:1234:5678:9abc:def0").value();
  EXPECT_NE(world.device_at(net::IpAddress(inside)), nullptr);
  EXPECT_EQ(world.device_at(net::IpAddress(outside)), nullptr);
  // The assigned address in the non-aliased prefix still answers.
  EXPECT_NE(world.device_at(
                net::IpAddress(net::Ipv6::parse("2001:64:2::1").value())),
            nullptr);
}

TEST(AliasedPrefix, DetectionSeparatesAliasedFromNormal) {
  auto world = aliased_world();
  sim::FabricConfig config;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  sim::Fabric fabric(world, config);

  const std::vector<net::IpAddress> candidates = {
      net::IpAddress(net::Ipv6::parse("2001:64:1::1").value()),
      net::IpAddress(net::Ipv6::parse("2001:64:2::1").value()),
  };
  const auto detection = detect_aliased_prefixes(
      fabric, {net::Ipv4(198, 51, 100, 7), 4444}, candidates);
  EXPECT_EQ(detection.prefixes_tested, 2u);
  ASSERT_EQ(detection.aliased_prefixes.size(), 1u);
  EXPECT_TRUE(detection.aliased_prefixes.count(
      prefix64_of(net::Ipv6::parse("2001:64:1::1").value())));

  const auto filtered = filter_aliased(candidates, detection);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].to_string(), "2001:64:2::1");
}

TEST(AliasedPrefix, GeneratedWorldContainsAliasedPrefixes) {
  auto config = topo::WorldConfig::tiny();
  config.aliased_prefix_rate = 0.5;  // force plenty
  const auto world = topo::generate_world(config);
  std::size_t aliased = 0;
  for (const auto& device : world.devices)
    aliased += device.answers_whole_v6_prefix;
  EXPECT_GT(aliased, 0u);
}

}  // namespace
}  // namespace snmpv3fp::scan
