// Columnar analysis + stage-overlap tests.
//
// The load-bearing guarantees: (1) the columnar block pivot is lossless —
// row(i) reconstructs the exact ScanRecord, the single-pass columnar block
// decoder accepts and rejects exactly what the row decoder does, and the
// columnar store cursor agrees with the row cursor including patch
// overlays; (2) the radix-hash alias grouping reproduces the canonical
// map-based grouping bit for bit at any thread count; (3) the columnar
// filter funnel and the overlapped join+filter are bit-identical to the
// legacy row paths — full-pipeline results match with the `columnar` knob
// on or off, store on or off, at 1/2/8 threads, and checkpoints written
// with either knob value resume interchangeably (the knob is excluded from
// the config digest).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/columnar.hpp"
#include "core/pipeline.hpp"
#include "scan/checkpoint.hpp"
#include "sim/faults.hpp"
#include "store/codec.hpp"
#include "store/columnar.hpp"
#include "store/record_store.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

using store::ColumnarBlock;
using store::EngineDictionary;
using store::RecordStore;
using store::StoreOptions;

std::string temp_dir(const std::string& name) {
  const auto dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Same deliberately varied record shapes as test_store.cpp: v4/v6 mix,
// missing / long / duplicate engine IDs, extra engines.
scan::ScanRecord make_record(std::size_t i) {
  scan::ScanRecord r;
  if (i % 3 == 0) {
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    bytes[15] = static_cast<std::uint8_t>(i);
    bytes[14] = static_cast<std::uint8_t>(i >> 8);
    r.target = net::IpAddress(net::Ipv6(bytes));
  } else {
    r.target = net::IpAddress(net::Ipv4(
        10, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i),
        static_cast<std::uint8_t>(i * 7)));
  }
  if (i % 5 != 1) {
    // i % 16 collapses many records onto the same ID — the dictionary must
    // see real duplicates, not only distinct entries.
    util::Bytes id{0x80, 0x00, 0x1f, 0x88, static_cast<std::uint8_t>(i % 16),
                   static_cast<std::uint8_t>(i % 3)};
    if (i % 7 == 0) id.resize(id.size() + i % 23, 0xab);
    r.engine_id = snmp::EngineId(id);
  }
  r.engine_boots = static_cast<std::uint32_t>(1 + i % 9);
  r.engine_time = static_cast<std::uint32_t>(i * 13 % 100000);
  r.send_time = static_cast<util::VTime>(1000000 + i * 200);
  r.receive_time = r.send_time + 31000 + static_cast<util::VTime>(i % 50);
  r.response_count = 1 + i % 4;
  r.response_bytes = 90 + i % 40;
  if (i % 11 == 0)
    r.extra_engines.push_back(
        snmp::EngineId(util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x99}));
  return r;
}

std::vector<scan::ScanRecord> make_records(std::size_t n) {
  std::vector<scan::ScanRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(make_record(i));
  return records;
}

void expect_same_record(const scan::ScanRecord& a, const scan::ScanRecord& b,
                        std::size_t i) {
  ASSERT_EQ(a.target, b.target) << "record " << i;
  EXPECT_EQ(a.engine_id, b.engine_id) << "record " << i;
  EXPECT_EQ(a.engine_boots, b.engine_boots) << "record " << i;
  EXPECT_EQ(a.engine_time, b.engine_time) << "record " << i;
  EXPECT_EQ(a.send_time, b.send_time) << "record " << i;
  EXPECT_EQ(a.receive_time, b.receive_time) << "record " << i;
  EXPECT_EQ(a.response_count, b.response_count) << "record " << i;
  EXPECT_EQ(a.response_bytes, b.response_bytes) << "record " << i;
  EXPECT_EQ(a.extra_engines, b.extra_engines) << "record " << i;
}

// ---- EngineDictionary -----------------------------------------------------

TEST(EngineDictionaryTest, CodesAreDenseStableAndFirstAppearanceOrdered) {
  EngineDictionary dict;
  // The empty ID is an ordinary entry.
  EXPECT_EQ(dict.encode({}), 0u);
  util::Bytes a{0x80, 0x01};
  util::Bytes b{0x80, 0x02, 0x03};
  EXPECT_EQ(dict.encode(a), 1u);
  EXPECT_EQ(dict.encode(b), 2u);
  // Re-encoding returns the existing code; entries never move.
  EXPECT_EQ(dict.encode(a), 1u);
  EXPECT_EQ(dict.encode({}), 0u);
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_TRUE(dict.entries()[0].raw().empty());
  EXPECT_EQ(dict.entries()[1].raw(), a);
  EXPECT_EQ(dict.entries()[2].raw(), b);

  std::uint32_t code = 99;
  EXPECT_TRUE(dict.find(b, code));
  EXPECT_EQ(code, 2u);
  EXPECT_FALSE(dict.find(util::Bytes{0x77}, code));
}

TEST(EngineDictionaryTest, SurvivesGrowthPastInitialCapacity) {
  EngineDictionary dict;
  std::vector<util::Bytes> ids;
  for (std::size_t i = 0; i < 500; ++i) {
    ids.push_back(util::Bytes{0x80, static_cast<std::uint8_t>(i),
                              static_cast<std::uint8_t>(i >> 8), 0x44});
    EXPECT_EQ(dict.encode(ids.back()), i);
  }
  ASSERT_EQ(dict.size(), 500u);
  // Every code still resolves after the table grew several times.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::uint32_t code = 0;
    ASSERT_TRUE(dict.find(ids[i], code));
    EXPECT_EQ(code, i);
    EXPECT_EQ(dict.entries()[i].raw(), ids[i]);
  }
}

// ---- block pivot ----------------------------------------------------------

TEST(ColumnarBlockTest, FromRecordsRoundTripsEveryRow) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{512}}) {
    const auto records = make_records(n);
    const auto block = ColumnarBlock::from_records(records);
    ASSERT_EQ(block.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_same_record(block.row(i), records[i], i);
      EXPECT_EQ(block.last_reboot(i), records[i].last_reboot());
    }
    // The dictionary actually deduplicates (make_record collapses IDs onto
    // ~16 shapes plus the empty ID and the long variants).
    if (n == 512) EXPECT_LT(block.dictionary().size(), n / 4);
  }
}

TEST(ColumnarBlockTest, DecodeColumnarMatchesRowDecode) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{512}}) {
    const auto records = make_records(n);
    const auto encoded = store::encode_block(records);
    const auto rows = store::decode_block(encoded);
    ASSERT_TRUE(rows.ok()) << rows.error();
    auto columnar = store::decode_block_columnar(encoded);
    ASSERT_TRUE(columnar.ok()) << columnar.error();
    ASSERT_EQ(columnar.value().size(), rows.value().size());
    for (std::size_t i = 0; i < rows.value().size(); ++i)
      expect_same_record(columnar.value().row(i), rows.value()[i], i);
  }
}

// Fail-closed parity: the single-pass columnar decoder must reject every
// truncation the row decoder rejects, and must never disagree with it on
// the fault-mutation corpus — same accept/reject verdict, and identical
// records whenever both accept.
TEST(ColumnarBlockTest, TruncationsRejectedExactlyLikeRowDecode) {
  const auto records = make_records(48);
  const auto encoded = store::encode_block(records);
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    const util::Bytes prefix(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(store::decode_block_columnar(prefix).ok()) << "length " << len;
    EXPECT_FALSE(store::decode_block(prefix).ok()) << "length " << len;
  }
}

TEST(ColumnarBlockTest, FaultCorpusVerdictsMatchRowDecode) {
  const auto records = make_records(64);
  const auto encoded = store::encode_block(records);
  for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind) {
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      util::Rng rng(seed * 1000 + kind);
      const auto mutated =
          sim::apply_fault(encoded, static_cast<sim::FaultKind>(kind), rng);
      const auto rows = store::decode_block(mutated);
      const auto columnar = store::decode_block_columnar(mutated);
      ASSERT_EQ(columnar.ok(), rows.ok())
          << sim::to_string(static_cast<sim::FaultKind>(kind)) << " seed "
          << seed << ": columnar "
          << (columnar.ok() ? "accepted" : columnar.error()) << ", row "
          << (rows.ok() ? "accepted" : rows.error());
      if (!rows.ok()) continue;
      // Both accepted (the mutation was a byte-level no-op): the records
      // must still agree. The clean accept path is covered by
      // DecodeColumnarMatchesRowDecode.
      ASSERT_EQ(columnar.value().size(), rows.value().size());
      for (std::size_t i = 0; i < rows.value().size(); ++i)
        expect_same_record(columnar.value().row(i), rows.value()[i], i);
    }
  }
}

// ---- columnar store cursor ------------------------------------------------

TEST(ColumnarCursorTest, MatchesRowCursorOnPatchedSpilledStore) {
  StoreOptions options;
  options.dir = temp_dir("columnar_cursor");
  options.records_per_block = 16;
  options.max_resident_bytes = 2048;  // force spill + eviction
  RecordStore store(options, "patched");
  const auto records = make_records(200);
  for (const auto& record : records) store.append(record);

  // Patch overlays on sealed rows and on the unsealed tail: extra
  // responses and extra engines must come through the columnar cursor.
  const snmp::EngineId other(util::Bytes{0x80, 0x00, 0x00, 0x63, 0x01});
  for (const std::size_t index : {3u, 3u, 40u, 130u, 197u})
    store.note_duplicate(index, &other);
  store.note_duplicate(77, nullptr);
  store.seal();
  ASSERT_TRUE(store.status().ok()) << store.status().error();

  std::vector<scan::ScanRecord> via_rows;
  {
    auto cursor = store.cursor();
    scan::ScanRecord record;
    while (cursor.next(record)) via_rows.push_back(record);
    ASSERT_TRUE(cursor.error().empty()) << cursor.error();
  }
  std::vector<scan::ScanRecord> via_columns;
  {
    auto cursor = store.columnar_cursor();
    ColumnarBlock block;
    std::size_t expected_base = 0;
    while (cursor.next_block(block)) {
      EXPECT_EQ(cursor.base(), expected_base);
      expected_base += block.size();
      for (std::size_t i = 0; i < block.size(); ++i)
        via_columns.push_back(block.row(i));
    }
    ASSERT_TRUE(cursor.error().empty()) << cursor.error();
  }
  ASSERT_EQ(via_columns.size(), via_rows.size());
  ASSERT_EQ(via_columns.size(), store.size());
  for (std::size_t i = 0; i < via_rows.size(); ++i)
    expect_same_record(via_columns[i], via_rows[i], i);
}

TEST(ColumnarCursorTest, FailsClosedOnDamagedSegment) {
  StoreOptions options;
  options.dir = temp_dir("columnar_cursor_damage");
  options.records_per_block = 16;
  options.max_resident_bytes = 1024;  // evict so reads go to disk
  store::StoreManifest manifest;
  {
    RecordStore store(options, "damaged");
    for (const auto& record : make_records(128)) store.append(record);
    store.seal();
    manifest = store.manifest();
  }
  const auto seg = options.dir + "/damaged.seg";
  const auto size = std::filesystem::file_size(seg);
  {
    std::fstream file(seg, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size / 2));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  auto restored = RecordStore::restore(options, manifest);
  ASSERT_NE(restored, nullptr);
  auto cursor = restored->columnar_cursor();
  ColumnarBlock block;
  while (cursor.next_block(block)) {
  }
  EXPECT_FALSE(cursor.error().empty());
}

// ---- columnar filter funnel -----------------------------------------------

// One synthetic record per filter stage (plus clean survivors): asserts the
// columnar verdict pass and the row paths agree on report AND survivors for
// an input where every stage fires, at several thread counts.
std::vector<core::JoinedRecord> stage_zoo() {
  // All times sit well after the epoch guard (virtual 0 = April 2021).
  const util::VTime rx = 1000 * util::kSecond;
  const auto base = [&](std::uint8_t tag) {
    core::JoinedRecord r;
    r.address = net::IpAddress(net::Ipv4(203, 0, 113, tag));
    r.first.target = r.second.target = r.address;
    r.first.engine_id = r.second.engine_id =
        snmp::EngineId::make_octets(9, util::Bytes{0x10, tag});
    r.first.engine_boots = r.second.engine_boots = 3;
    r.first.engine_time = r.second.engine_time = 500;
    r.first.send_time = r.second.send_time = rx - 31;
    r.first.receive_time = r.second.receive_time = rx;
    r.first.response_count = r.second.response_count = 1;
    r.first.response_bytes = r.second.response_bytes = 100;
    return r;
  };
  std::vector<core::JoinedRecord> zoo;
  {  // missing engine ID
    auto r = base(1);
    r.first.engine_id = snmp::EngineId();
    zoo.push_back(r);
  }
  {  // inconsistent engine IDs between scans
    auto r = base(2);
    r.second.engine_id = snmp::EngineId::make_octets(9, util::Bytes{0x77});
    zoo.push_back(r);
  }
  {  // too short (< 4 bytes)
    auto r = base(3);
    r.first.engine_id = r.second.engine_id =
        snmp::EngineId(util::Bytes{0x01, 0x02});
    zoo.push_back(r);
  }
  {  // promiscuous: identical payload under two different enterprises
    auto a = base(4);
    a.first.engine_id = a.second.engine_id =
        snmp::EngineId::make_octets(9, util::Bytes{0xaa, 0xbb});
    auto b = base(5);
    b.first.engine_id = b.second.engine_id =
        snmp::EngineId::make_octets(99, util::Bytes{0xaa, 0xbb});
    zoo.push_back(a);
    zoo.push_back(b);
  }
  {  // IPv4-format engine ID with a non-routable (private) address
    auto r = base(6);
    r.first.engine_id = r.second.engine_id =
        snmp::EngineId::make_ipv4(9, net::Ipv4(10, 1, 2, 3));
    zoo.push_back(r);
  }
  {  // MAC-format engine ID with an unregistered OUI
    auto r = base(7);
    r.first.engine_id = r.second.engine_id = snmp::EngineId::make_mac(
        9, net::MacAddress({0xfd, 0xfd, 0xfd, 0x01, 0x02, 0x03}));
    zoo.push_back(r);
  }
  {  // zero engine time
    auto r = base(8);
    r.first.engine_time = r.second.engine_time = 0;
    zoo.push_back(r);
  }
  {  // zero engine boots (scan 2 only — both scans are checked)
    auto r = base(9);
    r.second.engine_boots = 0;
    zoo.push_back(r);
  }
  {  // engine time in the future: last reboot before the Unix epoch
    auto r = base(10);
    r.first.engine_time = r.second.engine_time = 4000000000u;
    zoo.push_back(r);
  }
  {  // boots mismatch between scans
    auto r = base(11);
    r.second.engine_boots = 4;
    zoo.push_back(r);
  }
  {  // last-reboot drift above the 10 s threshold
    auto r = base(12);
    r.second.receive_time += 100 * util::kSecond;
    zoo.push_back(r);
  }
  // Clean survivors, including two sharing one engine ID (dictionary
  // dedup must not merge their verdicts with the promiscuous pair).
  zoo.push_back(base(20));
  zoo.push_back(base(21));
  {
    auto r = base(22);
    r.first.engine_id = r.second.engine_id = zoo.back().first.engine_id;
    zoo.push_back(r);
  }
  return zoo;
}

TEST(ColumnarFilterTest, MatchesApplyAndStreamOnStageZoo) {
  const auto zoo = stage_zoo();
  const core::FilterPipeline pipeline{core::FilterOptions{}};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ParallelOptions parallel;
    parallel.threads = threads;
    auto in_place = zoo;
    const auto report = pipeline.apply(in_place, parallel);
    std::vector<core::JoinedRecord> streamed, columnar;
    const auto stream_report = pipeline.apply_stream(zoo, streamed, parallel);
    const auto columnar_report =
        pipeline.apply_columnar(zoo, columnar, parallel);

    // Every stage actually fired (the zoo is wired to hit all ten).
    for (std::size_t stage = 0; stage < core::kFilterStageCount; ++stage)
      EXPECT_GT(report.dropped[stage], 0u)
          << core::to_string(static_cast<core::FilterStage>(stage));

    EXPECT_EQ(columnar_report.input, report.input);
    EXPECT_EQ(columnar_report.output, report.output);
    EXPECT_EQ(columnar_report.dropped, report.dropped);
    EXPECT_EQ(stream_report.dropped, report.dropped);
    ASSERT_EQ(columnar.size(), in_place.size());
    ASSERT_EQ(streamed.size(), in_place.size());
    for (std::size_t i = 0; i < columnar.size(); ++i) {
      EXPECT_EQ(columnar[i].address, in_place[i].address) << "record " << i;
      EXPECT_EQ(columnar[i].first.engine_id, in_place[i].first.engine_id);
      EXPECT_EQ(columnar[i].second.receive_time,
                in_place[i].second.receive_time);
    }
  }
}

TEST(ColumnarFilterTest, MatchesApplyOnCampaignData) {
  auto world = topo::generate_world(topo::WorldConfig::tiny());
  scan::CampaignOptions options;
  options.seed = 31;
  options.shards = 2;
  const auto pair = scan::run_two_scan_campaign(world, options);
  const auto joined = core::join_scans(pair.scan1, pair.scan2);
  ASSERT_GT(joined.size(), 0u);

  const core::FilterPipeline pipeline{core::FilterOptions{}};
  auto in_place = joined;
  const auto report = pipeline.apply(in_place);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ParallelOptions parallel;
    parallel.threads = threads;
    std::vector<core::JoinedRecord> survivors;
    const auto columnar_report =
        pipeline.apply_columnar(joined, survivors, parallel);
    EXPECT_EQ(columnar_report.input, report.input);
    EXPECT_EQ(columnar_report.output, report.output);
    EXPECT_EQ(columnar_report.dropped, report.dropped);
    ASSERT_EQ(survivors.size(), in_place.size());
    for (std::size_t i = 0; i < survivors.size(); ++i)
      EXPECT_EQ(survivors[i].address, in_place[i].address) << "record " << i;
  }
}

// Incremental feeding must be equivalent to one-shot pivoting: the funnel
// fed in uneven slices returns the same report as apply_columnar whole.
TEST(ColumnarFilterTest, IncrementalFeedMatchesOneShot) {
  const auto zoo = stage_zoo();
  const core::FilterPipeline pipeline{core::FilterOptions{}};
  std::vector<core::JoinedRecord> whole;
  const auto whole_report = pipeline.apply_columnar(zoo, whole);

  core::ColumnarFunnel funnel(pipeline.options());
  const std::size_t cuts[] = {1, 3, 4, 9, zoo.size()};
  std::size_t begin = 0;
  for (const std::size_t end : cuts) {
    funnel.feed(core::ColumnarJoined::from_rows(
        std::span<const core::JoinedRecord>(zoo).subspan(begin, end - begin)));
    begin = end;
  }
  EXPECT_EQ(funnel.rows_fed(), zoo.size());
  std::vector<core::JoinedRecord> survivors;
  const auto report = funnel.finish(zoo, survivors);
  EXPECT_EQ(report.input, whole_report.input);
  EXPECT_EQ(report.output, whole_report.output);
  EXPECT_EQ(report.dropped, whole_report.dropped);
  ASSERT_EQ(survivors.size(), whole.size());
  for (std::size_t i = 0; i < survivors.size(); ++i)
    EXPECT_EQ(survivors[i].address, whole[i].address);
}

// ---- radix alias grouping -------------------------------------------------

// Reference reimplementation of the documented grouping semantics with a
// std::map (the pre-radix algorithm): canonical order is (engine-ID bytes,
// boots1, reboot1, boots2, reboot2) lexicographic; the representative
// boots/last_reboot come from the group's first record in input order;
// addresses are sorted per set.
std::int64_t reference_match_key(core::RebootMatch match,
                                 util::VTime last_reboot) {
  const double seconds = util::to_seconds(last_reboot);
  switch (match) {
    case core::RebootMatch::kExact:
      return static_cast<std::int64_t>(std::floor(seconds));
    case core::RebootMatch::kRound:
      return static_cast<std::int64_t>(std::llround(seconds / 10.0));
    case core::RebootMatch::kDivide20:
      return static_cast<std::int64_t>(std::floor(seconds / 20.0));
    case core::RebootMatch::kDivide20Round:
      return static_cast<std::int64_t>(std::llround(seconds / 20.0));
  }
  return 0;
}

core::AliasResolution reference_resolve(
    std::span<const core::JoinedRecord> records,
    const core::AliasOptions& options) {
  using Key = std::tuple<util::Bytes, std::uint32_t, std::int64_t,
                         std::uint32_t, std::int64_t>;
  std::map<Key, core::AliasSet> groups;
  for (const auto& record : records) {
    Key key{record.engine_id().raw(), 0, 0, 0, 0};
    if (!options.engine_id_only) {
      std::get<1>(key) = record.first.engine_boots;
      std::get<2>(key) =
          reference_match_key(options.match, record.first.last_reboot());
      if (options.use_both_scans) {
        std::get<3>(key) = record.second.engine_boots;
        std::get<4>(key) =
            reference_match_key(options.match, record.second.last_reboot());
      }
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.engine_id = record.engine_id();
      it->second.engine_boots = record.first.engine_boots;
      it->second.last_reboot = record.first.last_reboot();
    }
    it->second.addresses.push_back(record.address);
  }
  core::AliasResolution resolution;
  for (auto& [key, set] : groups) {
    std::sort(set.addresses.begin(), set.addresses.end());
    resolution.sets.push_back(std::move(set));
  }
  return resolution;
}

// A 42-engine zoo: 42 distinct engine IDs spread over many addresses with
// colliding and differing boots/reboot tuples, v4 and v6 mixed.
std::vector<core::JoinedRecord> alias_zoo() {
  std::vector<core::JoinedRecord> records;
  const util::VTime rx = 5000 * util::kSecond;
  for (std::size_t i = 0; i < 420; ++i) {
    core::JoinedRecord r;
    if (i % 4 == 0) {
      std::array<std::uint8_t, 16> bytes{};
      bytes[0] = 0x20;
      bytes[1] = 0x01;
      bytes[15] = static_cast<std::uint8_t>(i);
      bytes[14] = static_cast<std::uint8_t>(i >> 8);
      r.address = net::IpAddress(net::Ipv6(bytes));
    } else {
      r.address = net::IpAddress(
          net::Ipv4(198, 18, static_cast<std::uint8_t>(i >> 8),
                    static_cast<std::uint8_t>(i)));
    }
    // 42 distinct engines; several boots/reboot variants per engine so the
    // tuple actually splits sets.
    r.first.engine_id = r.second.engine_id = snmp::EngineId::make_octets(
        9, util::Bytes{static_cast<std::uint8_t>(i % 42), 0x55});
    r.first.engine_boots = r.second.engine_boots =
        static_cast<std::uint32_t>(1 + (i / 42) % 3);
    r.first.engine_time = static_cast<std::uint32_t>(100 + (i / 126) * 7);
    r.second.engine_time = r.first.engine_time + (i % 2 ? 9u : 25u);
    r.first.receive_time = rx + static_cast<util::VTime>(i % 5);
    r.second.receive_time =
        r.first.receive_time +
        static_cast<util::VTime>(r.second.engine_time - r.first.engine_time) *
            util::kSecond +
        (i % 3 ? util::kSecond * 4 : 0);
    r.first.target = r.second.target = r.address;
    records.push_back(r);
  }
  return records;
}

TEST(ColumnarAliasTest, RadixGroupingMatchesMapReferenceAcrossVariants) {
  const auto records = alias_zoo();
  std::vector<core::AliasOptions> variants;
  for (const auto match :
       {core::RebootMatch::kExact, core::RebootMatch::kRound,
        core::RebootMatch::kDivide20, core::RebootMatch::kDivide20Round}) {
    core::AliasOptions options;
    options.match = match;
    variants.push_back(options);
    options.use_both_scans = false;
    variants.push_back(options);
  }
  {
    core::AliasOptions options;
    options.engine_id_only = true;
    variants.push_back(options);
  }

  for (const auto& options : variants) {
    const auto reference = reference_resolve(records, options);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      util::ParallelOptions parallel;
      parallel.threads = threads;
      const auto resolution = core::resolve_aliases(records, options, parallel);
      ASSERT_EQ(resolution.sets.size(), reference.sets.size())
          << to_string(options.match) << " both=" << options.use_both_scans
          << " id_only=" << options.engine_id_only << " threads=" << threads;
      for (std::size_t i = 0; i < resolution.sets.size(); ++i) {
        EXPECT_EQ(resolution.sets[i].addresses, reference.sets[i].addresses)
            << "set " << i << " threads " << threads;
        EXPECT_EQ(resolution.sets[i].engine_id, reference.sets[i].engine_id);
        EXPECT_EQ(resolution.sets[i].engine_boots,
                  reference.sets[i].engine_boots);
        EXPECT_EQ(resolution.sets[i].last_reboot,
                  reference.sets[i].last_reboot);
      }
    }
  }
}

// Multi-span input (the pipeline's v4+v6 form) must equal concatenation.
TEST(ColumnarAliasTest, MultiSpanMatchesConcatenation) {
  const auto records = alias_zoo();
  const std::size_t cut = records.size() / 3;
  const std::span<const core::JoinedRecord> whole(records);
  const std::span<const core::JoinedRecord> parts[] = {whole.first(cut),
                                                       whole.subspan(cut)};
  const auto split = core::resolve_aliases(
      std::span<const std::span<const core::JoinedRecord>>(parts));
  const auto joined = core::resolve_aliases(whole);
  ASSERT_EQ(split.sets.size(), joined.sets.size());
  for (std::size_t i = 0; i < split.sets.size(); ++i) {
    EXPECT_EQ(split.sets[i].addresses, joined.sets[i].addresses);
    EXPECT_EQ(split.sets[i].engine_id, joined.sets[i].engine_id);
  }
}

// ---- full pipeline --------------------------------------------------------

core::PipelineOptions tiny_pipeline_options() {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  options.seed = 20210413;
  return options;
}

void expect_same_joined(const std::vector<core::JoinedRecord>& a,
                        const std::vector<core::JoinedRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].address, b[i].address) << "joined " << i;
    EXPECT_EQ(a[i].first.engine_id, b[i].first.engine_id);
    EXPECT_EQ(a[i].second.engine_id, b[i].second.engine_id);
    EXPECT_EQ(a[i].first.send_time, b[i].first.send_time);
    EXPECT_EQ(a[i].second.receive_time, b[i].second.receive_time);
    EXPECT_EQ(a[i].first.response_count, b[i].first.response_count);
    EXPECT_EQ(a[i].first.extra_engines, b[i].first.extra_engines);
  }
}

void expect_same_pipeline_result(const core::PipelineResult& a,
                                 const core::PipelineResult& b) {
  expect_same_joined(a.v4_joined, b.v4_joined);
  expect_same_joined(a.v6_joined, b.v6_joined);
  expect_same_joined(a.v4_records, b.v4_records);
  expect_same_joined(a.v6_records, b.v6_records);
  EXPECT_EQ(a.v4_join_stats.overlap, b.v4_join_stats.overlap);
  EXPECT_EQ(a.v4_join_stats.first_only, b.v4_join_stats.first_only);
  EXPECT_EQ(a.v4_join_stats.second_only, b.v4_join_stats.second_only);
  EXPECT_EQ(a.v6_join_stats.overlap, b.v6_join_stats.overlap);
  EXPECT_EQ(a.v4_report.dropped, b.v4_report.dropped);
  EXPECT_EQ(a.v6_report.dropped, b.v6_report.dropped);
  ASSERT_EQ(a.resolution.sets.size(), b.resolution.sets.size());
  for (std::size_t i = 0; i < a.resolution.sets.size(); ++i) {
    EXPECT_EQ(a.resolution.sets[i].addresses, b.resolution.sets[i].addresses);
    EXPECT_EQ(a.resolution.sets[i].engine_id, b.resolution.sets[i].engine_id);
  }
  ASSERT_EQ(a.devices.size(), b.devices.size());
  EXPECT_EQ(a.router_device_count(), b.router_device_count());
}

TEST(ColumnarPipelineTest, BitIdenticalColumnarOnOffStoreOnOffAnyThreads) {
  // Reference: the legacy row path (columnar off, in-RAM, one thread).
  auto reference_options = tiny_pipeline_options();
  reference_options.columnar = false;
  reference_options.parallel.threads = 1;
  const auto reference = core::run_full_pipeline(reference_options);
  ASSERT_GT(reference.v4_records.size(), 0u);
  ASSERT_GT(reference.devices.size(), 0u);

  for (const bool store_backed : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      auto options = tiny_pipeline_options();
      options.columnar = true;
      options.parallel.threads = threads;
      if (store_backed) {
        options.store.dir = temp_dir(
            "columnar_pipe_s" + std::to_string(threads));
        options.store.records_per_block = 8;
        options.store.max_resident_bytes = 4096;
      }
      const auto result = core::run_full_pipeline(options);
      SCOPED_TRACE("store=" + std::to_string(store_backed) +
                   " threads=" + std::to_string(threads));
      expect_same_pipeline_result(result, reference);
    }
  }
}

// The columnar knob is execution-only all the way into fault tolerance: a
// checkpoint written with one knob value resumes under the other (the knob
// is excluded from the campaign config digest) and the resumed result is
// bit-identical to an uninterrupted run, at several thread counts.
TEST(ColumnarPipelineTest, KillResumeInterchangeableAcrossColumnarKnob) {
  const auto reference = core::run_full_pipeline(tiny_pipeline_options());
  ASSERT_FALSE(reference.interrupted);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto killed_options = tiny_pipeline_options();
    killed_options.columnar = true;
    killed_options.parallel.threads = threads;
    killed_options.checkpoint_dir =
        temp_dir("columnar_ckpt_t" + std::to_string(threads));
    std::filesystem::create_directories(killed_options.checkpoint_dir);
    killed_options.checkpoint_every_n_targets = 16;
    killed_options.abort_after_checkpoints = 1;
    killed_options.store.dir =
        temp_dir("columnar_ckpt_store_t" + std::to_string(threads));
    killed_options.store.records_per_block = 8;
    const auto killed = core::run_full_pipeline(killed_options);
    ASSERT_TRUE(killed.interrupted) << threads << " threads";

    // Resume with the opposite knob value.
    auto resume_options = killed_options;
    resume_options.columnar = false;
    resume_options.abort_after_checkpoints = 0;
    const auto resumed = core::run_full_pipeline(resume_options);
    ASSERT_FALSE(resumed.interrupted) << threads << " threads";
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_pipeline_result(resumed, reference);
  }
}

}  // namespace
}  // namespace snmpv3fp
