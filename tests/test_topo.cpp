#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/datasets.hpp"
#include "topo/generator.hpp"
#include "topo/vendor.hpp"

namespace snmpv3fp::topo {
namespace {

const World& tiny_world() {
  static const World world = generate_world(WorldConfig::tiny());
  return world;
}

// ---------------------------------------------------------------------------
// Device time/boot arithmetic
// ---------------------------------------------------------------------------

TEST(Device, EngineBootsCounting) {
  Device device;
  device.boots_before_history = 10;
  device.reboots = {-100 * util::kDay, 5 * util::kDay, 10 * util::kDay};
  EXPECT_EQ(device.engine_boots_at(-200 * util::kDay), 10u);
  EXPECT_EQ(device.engine_boots_at(0), 11u);
  EXPECT_EQ(device.engine_boots_at(5 * util::kDay), 12u);
  EXPECT_EQ(device.engine_boots_at(7 * util::kDay), 12u);
  EXPECT_EQ(device.engine_boots_at(30 * util::kDay), 13u);
}

TEST(Device, EngineTimeFollowsLastReboot) {
  Device device;
  device.reboots = {-util::kDay, 2 * util::kDay};
  EXPECT_EQ(device.engine_time_at(0), 86400u);
  EXPECT_EQ(device.engine_time_at(util::kDay), 2 * 86400u);
  // After the second reboot the counter restarts.
  EXPECT_EQ(device.engine_time_at(2 * util::kDay + util::kSecond), 1u);
}

TEST(Device, ClockSkewScalesEngineTime) {
  Device device;
  device.reboots = {-100000 * util::kSecond};
  device.clock_skew_ppm = 1000.0;  // 0.1%
  EXPECT_NEAR(device.engine_time_at(0), 100100u, 1);
  device.clock_skew_ppm = -1000.0;
  EXPECT_NEAR(device.engine_time_at(0), 99900u, 1);
}

TEST(Device, DualStackCounting) {
  Device device;
  Interface a, b;
  a.v4 = net::Ipv4(192, 0, 2, 1);
  b.v6 = net::Ipv6::parse("2001:db8::1").value();
  device.interfaces = {a, b};
  EXPECT_TRUE(device.dual_stack());
  EXPECT_EQ(device.v4_count(), 1u);
  EXPECT_EQ(device.v6_count(), 1u);
}

// ---------------------------------------------------------------------------
// Generator invariants
// ---------------------------------------------------------------------------

TEST(Generator, DeterministicFromSeed) {
  const World a = generate_world(WorldConfig::tiny());
  const World b = generate_world(WorldConfig::tiny());
  ASSERT_EQ(a.devices.size(), b.devices.size());
  ASSERT_EQ(a.ases.size(), b.ases.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].engine_id, b.devices[i].engine_id);
    EXPECT_EQ(a.devices[i].interfaces.size(), b.devices[i].interfaces.size());
    EXPECT_EQ(a.devices[i].reboots, b.devices[i].reboots);
  }
}

TEST(Generator, DifferentSeedsProduceDifferentWorlds) {
  WorldConfig config = WorldConfig::tiny();
  config.seed = 1234;
  const World other = generate_world(config);
  const World& base = tiny_world();
  ASSERT_FALSE(other.devices.empty());
  // Engine IDs should differ almost surely.
  std::size_t same = 0;
  const std::size_t n = std::min(base.devices.size(), other.devices.size());
  for (std::size_t i = 0; i < n; ++i)
    same += base.devices[i].engine_id == other.devices[i].engine_id;
  EXPECT_LT(same, n / 10);
}

TEST(Generator, AllAddressesAreRoutableAndMapped) {
  const World& world = tiny_world();
  for (const auto& device : world.devices) {
    for (const auto& itf : device.interfaces) {
      if (itf.v4) {
        EXPECT_TRUE(itf.v4->is_routable()) << itf.v4->to_string();
        EXPECT_TRUE(world.ases[device.as_index].v4_prefix.contains(*itf.v4));
      }
      if (itf.v6) EXPECT_TRUE(itf.v6->is_routable());
    }
  }
  // Address map is consistent with interfaces.
  const auto addresses = world.addresses(net::Family::kIpv4);
  EXPECT_GT(addresses.size(), 1000u);
  for (const auto& address : addresses)
    EXPECT_NE(world.device_index_at(address), kNoDevice);
}

TEST(Generator, AsPrefixesDisjoint) {
  const World& world = tiny_world();
  std::set<std::uint32_t> bases;
  for (const auto& as : world.ases) {
    EXPECT_EQ(as.v4_prefix.length(), 16);
    EXPECT_TRUE(bases.insert(as.v4_prefix.base().value()).second)
        << "duplicate prefix " << as.v4_prefix.to_string();
  }
}

TEST(Generator, AsnsUnique) {
  const World& world = tiny_world();
  std::set<std::uint32_t> asns;
  for (const auto& as : world.ases)
    EXPECT_TRUE(asns.insert(as.asn).second) << "duplicate ASN " << as.asn;
}

TEST(Generator, RebootHistoriesSortedAndNonEmpty) {
  const World& world = tiny_world();
  for (const auto& device : world.devices) {
    ASSERT_FALSE(device.reboots.empty());
    EXPECT_LE(device.reboots.front(), 0);  // last reboot before the epoch
    EXPECT_TRUE(std::is_sorted(device.reboots.begin(), device.reboots.end()));
    EXPECT_GE(device.boots_before_history, 1u);
  }
}

TEST(Generator, VendorMixMatchesRegionPolicy) {
  const World& world = tiny_world();
  // Huawei must not appear in NA routers (Figure 15's headline fact).
  for (const auto& device : world.devices) {
    if (device.kind != DeviceKind::kRouter || !device.itdk_eligible) continue;
    if (world.ases[device.as_index].region == "NA")
      EXPECT_NE(device.vendor->name, "Huawei");
  }
}

TEST(Generator, RouterCountsRoughlyMatchConfig) {
  const World& world = tiny_world();
  EXPECT_GT(world.router_count(), 100u);
  EXPECT_GT(world.devices.size(), world.router_count());
}

TEST(Generator, ConstantBugDevicesShareThePaperValue) {
  const World world = generate_world(WorldConfig::tiny());
  std::size_t afflicted = 0;
  for (const auto& device : world.devices)
    if (util::to_hex(device.engine_id.raw()) == "800000090300000000000000")
      ++afflicted;
  // The tiny world still carries a handful of buggy Cisco boxes, and they
  // all share the single constant value.
  EXPECT_GT(afflicted, 0u);
}

// ---------------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------------

TEST(Churn, RebindsOnlyChurningDevices) {
  World world = generate_world(WorldConfig::tiny());
  std::map<DeviceIndex, std::vector<net::Ipv4>> before;
  for (const auto& device : world.devices) {
    std::vector<net::Ipv4> addrs;
    for (const auto& itf : device.interfaces)
      if (itf.v4) addrs.push_back(*itf.v4);
    before[device.index] = std::move(addrs);
  }
  world.rebind_churning_devices(0xfeed);
  std::size_t churners = 0, changed = 0;
  for (const auto& device : world.devices) {
    std::vector<net::Ipv4> addrs;
    for (const auto& itf : device.interfaces)
      if (itf.v4) addrs.push_back(*itf.v4);
    if (!device.churns) {
      EXPECT_EQ(addrs, before[device.index]);  // static devices untouched
    } else if (!addrs.empty()) {
      ++churners;
      changed += addrs != before[device.index];
    }
  }
  if (churners > 10) EXPECT_GT(changed, churners * 8 / 10);
}

TEST(Churn, RecyclesAddressesToOtherDevices) {
  World world = generate_world(WorldConfig::tiny());
  // Record the churning addresses of epoch 1.
  std::map<net::IpAddress, DeviceIndex> old_owner;
  for (const auto& device : world.devices) {
    if (!device.churns) continue;
    for (const auto& itf : device.interfaces)
      if (itf.v4) old_owner[net::IpAddress(*itf.v4)] = device.index;
  }
  world.rebind_churning_devices(0xbeef);
  std::size_t reused_by_other = 0;
  for (const auto& [address, owner] : old_owner) {
    const auto now = world.device_index_at(address);
    if (now != kNoDevice && now != owner) ++reused_by_other;
  }
  // DHCP-style recycling: a solid share of old leases now belong to
  // somebody else (drives the paper's "inconsistent engine ID" filter).
  if (old_owner.size() > 20)
    EXPECT_GT(reused_by_other, old_owner.size() / 4);
}

// ---------------------------------------------------------------------------
// Dataset exporters
// ---------------------------------------------------------------------------

TEST(Datasets, ItdkCoversOnlyEligibleRouters) {
  const World& world = tiny_world();
  const auto itdk = export_itdk_v4(world, {});
  ASSERT_FALSE(itdk.addresses.empty());
  for (const auto& address : itdk.addresses) {
    EXPECT_TRUE(address.is_v4());
    const auto* device = world.device_at(address);
    ASSERT_NE(device, nullptr);
    EXPECT_TRUE(device->itdk_eligible);
  }
}

TEST(Datasets, CoverageKnobWorks) {
  const World& world = tiny_world();
  DatasetOptions low;
  low.router_coverage = 0.2;
  DatasetOptions high;
  high.router_coverage = 0.95;
  EXPECT_LT(export_itdk_v4(world, low).addresses.size(),
            export_itdk_v4(world, high).addresses.size());
}

TEST(Datasets, AliasSetsPartitionTheirAddresses) {
  const auto itdk = export_itdk_v4(tiny_world(), {});
  std::set<net::IpAddress> seen;
  for (const auto& set : itdk.alias_sets)
    for (const auto& address : set)
      EXPECT_TRUE(seen.insert(address).second) << "address in two sets";
}

TEST(Datasets, HitlistIncludesCpe) {
  const World& world = tiny_world();
  const auto hitlist = export_hitlist_v6(world, 1);
  bool has_cpe = false;
  for (const auto& address : hitlist) {
    EXPECT_TRUE(address.is_v6());
    const auto* device = world.device_at(address);
    if (device != nullptr && device->kind == DeviceKind::kCpe) has_cpe = true;
  }
  EXPECT_TRUE(has_cpe);
}

TEST(Datasets, PtrRecordsMatchInterfaces) {
  const World& world = tiny_world();
  const auto records = export_ptr_records(world);
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_FALSE(record.name.empty());
    EXPECT_NE(world.device_index_at(record.address), kNoDevice);
  }
}

TEST(Datasets, AsTableResolvesAllAssignedAddresses) {
  const World& world = tiny_world();
  const auto table = build_as_table(world);
  EXPECT_EQ(table.size(), world.ases.size() * 2);
  for (const auto& address : world.addresses(net::Family::kIpv4)) {
    const auto info = table.lookup(address);
    ASSERT_TRUE(info.has_value()) << address.to_string();
  }
}

TEST(Datasets, UnionDeduplicates) {
  const World& world = tiny_world();
  const auto itdk = export_itdk_v4(world, {});
  const auto atlas = export_atlas(world, {});
  const auto merged = dataset_union({&itdk, &atlas});
  std::set<net::IpAddress> unique(merged.begin(), merged.end());
  EXPECT_EQ(unique.size(), merged.size());
  EXPECT_GE(merged.size(), itdk.addresses.size());
}

// ---------------------------------------------------------------------------
// Vendor profiles
// ---------------------------------------------------------------------------

TEST(Vendors, ProfilesAreConsistent) {
  for (const auto* table :
       {&builtin_router_vendors(), &builtin_cpe_vendors(),
        &builtin_server_vendors()}) {
    for (const auto& vendor : *table) {
      EXPECT_FALSE(vendor.name.empty());
      EXPECT_GT(vendor.enterprise_pen, 0u);
      EXPECT_GE(vendor.snmpv3_responsive, 0.0);
      EXPECT_LE(vendor.snmpv3_responsive, 1.0);
      EXPECT_GT(vendor.mean_days_between_reboots, 0.0);
      const auto& p = vendor.engine_id_policy;
      const double total = p.mac + p.ipv4 + p.text + p.octets + p.enterprise +
                           p.net_snmp + p.non_conforming;
      EXPECT_GT(total, 0.0) << vendor.name;
    }
  }
}

TEST(Vendors, LookupByName) {
  EXPECT_EQ(vendor_profile("Cisco").enterprise_pen, 9u);
  EXPECT_EQ(vendor_profile("Juniper").initial_ttl, 64);
  EXPECT_EQ(vendor_profile("Huawei").initial_ttl, 255);  // same as Cisco
}

TEST(Vendors, TruthAliasSetsMatchInterfaces) {
  const World& world = tiny_world();
  const auto sets = world.truth_alias_sets();
  std::size_t total_addresses = 0;
  for (const auto& set : sets) total_addresses += set.size();
  EXPECT_EQ(total_addresses, world.address_count(net::Family::kIpv4) +
                                 world.address_count(net::Family::kIpv6));
}

}  // namespace
}  // namespace snmpv3fp::topo
