// Memory-bounded record store tests.
//
// The load-bearing guarantees: (1) the codec and the store fail closed on
// any damaged input — the sim/faults mutation corpus never makes decode
// throw or silently accept corrupted records; (2) a store-backed campaign
// and pipeline are bit-identical to the historical all-in-RAM path at any
// thread count, including through a kill/resume cycle whose checkpoints
// carry only per-shard store deltas.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "scan/campaign.hpp"
#include "scan/checkpoint.hpp"
#include "sim/faults.hpp"
#include "store/codec.hpp"
#include "store/record_store.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

using store::RecordStore;
using store::StoreOptions;

std::string temp_dir(const std::string& name) {
  const auto dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Deterministic, deliberately varied record shapes: v4/v6 mix, missing and
// long engine IDs, extra engines, negative receive deltas never occur but
// send-time deltas do when records interleave across shards.
scan::ScanRecord make_record(std::size_t i) {
  scan::ScanRecord r;
  if (i % 3 == 0) {
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    bytes[15] = static_cast<std::uint8_t>(i);
    bytes[14] = static_cast<std::uint8_t>(i >> 8);
    r.target = net::IpAddress(net::Ipv6(bytes));
  } else {
    r.target = net::IpAddress(net::Ipv4(
        10, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i),
        static_cast<std::uint8_t>(i * 7)));
  }
  if (i % 5 != 1) {
    util::Bytes id{0x80, 0x00, 0x1f, 0x88,
                   static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
    if (i % 7 == 0) id.resize(id.size() + i % 23, 0xab);
    r.engine_id = snmp::EngineId(id);
  }
  r.engine_boots = static_cast<std::uint32_t>(1 + i % 9);
  r.engine_time = static_cast<std::uint32_t>(i * 13 % 100000);
  r.send_time = static_cast<util::VTime>(1000000 + i * 200);
  r.receive_time = r.send_time + 31000 + static_cast<util::VTime>(i % 50);
  r.response_count = 1 + i % 4;
  r.response_bytes = 90 + i % 40;
  if (i % 11 == 0)
    r.extra_engines.push_back(
        snmp::EngineId(util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x99}));
  return r;
}

std::vector<scan::ScanRecord> make_records(std::size_t n) {
  std::vector<scan::ScanRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(make_record(i));
  return records;
}

void expect_same_records(const std::vector<scan::ScanRecord>& a,
                         const std::vector<scan::ScanRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].target, b[i].target) << "record " << i;
    EXPECT_EQ(a[i].engine_id, b[i].engine_id) << "record " << i;
    EXPECT_EQ(a[i].engine_boots, b[i].engine_boots);
    EXPECT_EQ(a[i].engine_time, b[i].engine_time);
    EXPECT_EQ(a[i].send_time, b[i].send_time);
    EXPECT_EQ(a[i].receive_time, b[i].receive_time);
    EXPECT_EQ(a[i].response_count, b[i].response_count) << "record " << i;
    EXPECT_EQ(a[i].response_bytes, b[i].response_bytes);
    EXPECT_EQ(a[i].extra_engines, b[i].extra_engines) << "record " << i;
  }
}

void expect_same_scan(const scan::ScanResult& a, const scan::ScanResult& b) {
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.targets_probed, b.targets_probed);
  EXPECT_EQ(a.undecodable_responses, b.undecodable_responses);
  EXPECT_EQ(a.pacer_backoffs, b.pacer_backoffs);
  expect_same_records(a.materialize_records(), b.materialize_records());
}

// ---- codec ----------------------------------------------------------------

TEST(StoreCodec, VarintRoundTripAndEdges) {
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{300}, std::uint64_t{1} << 32,
        ~std::uint64_t{0}}) {
    util::Bytes out;
    store::put_varint(out, value);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(store::get_varint(out, pos, back));
    EXPECT_EQ(back, value);
    EXPECT_EQ(pos, out.size());
  }
  // Truncated continuation byte.
  {
    const util::Bytes truncated{0x80};
    std::size_t pos = 0;
    std::uint64_t back = 0;
    EXPECT_FALSE(store::get_varint(truncated, pos, back));
  }
  // 10-byte encoding overflowing 64 bits.
  {
    util::Bytes overflow(9, 0xff);
    overflow.push_back(0x02);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    EXPECT_FALSE(store::get_varint(overflow, pos, back));
  }
}

TEST(StoreCodec, ZigzagRoundTrip) {
  for (const std::int64_t value :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(store::unzigzag(store::zigzag(value)), value);
  }
}

TEST(StoreCodec, BlockRoundTripPreservesEveryField) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{512}}) {
    const auto records = make_records(n);
    const auto block = store::encode_block(records);
    const auto size = store::peek_block_size(block);
    ASSERT_TRUE(size.ok()) << size.error();
    EXPECT_EQ(size.value(), block.size());
    auto decoded = store::decode_block(block);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    expect_same_records(decoded.value(), records);
  }
}

// Reuses the hostile-fabric corruption corpus (sim/faults.hpp) against
// encoded blocks: every FaultKind, many seeds. Decode must never throw and
// never silently accept damage — it either fails or (when the mutation
// happens to be a byte-for-byte no-op, e.g. a splice from an identical
// region) returns exactly the original records.
TEST(StoreCodec, FaultCorpusFailsClosed) {
  const auto records = make_records(64);
  const auto block = store::encode_block(records);
  std::size_t rejected = 0, total = 0;
  for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind) {
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      util::Rng rng(seed * 1000 + kind);
      const auto mutated =
          sim::apply_fault(block, static_cast<sim::FaultKind>(kind), rng);
      const auto decoded = store::decode_block(mutated);
      ++total;
      if (!decoded.ok()) {
        ++rejected;
        continue;
      }
      // Accepted: the mutation must not have changed a single record.
      expect_same_records(decoded.value(), records);
      EXPECT_EQ(mutated, block)
          << "decode accepted a block that differs from the original ("
          << sim::to_string(static_cast<sim::FaultKind>(kind)) << ", seed "
          << seed << ")";
    }
  }
  // The corpus must actually exercise the failure path.
  EXPECT_GT(rejected, total * 9 / 10);
}

TEST(StoreCodec, TruncationsAndGarbageAreRejected) {
  const auto records = make_records(16);
  const auto block = store::encode_block(records);
  for (std::size_t len = 0; len < block.size(); ++len) {
    const util::Bytes prefix(block.begin(), block.begin() + len);
    EXPECT_FALSE(store::decode_block(prefix).ok()) << "length " << len;
  }
  util::Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    util::Bytes garbage(rng.next() % 256);
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_FALSE(store::decode_block(garbage).ok());
  }
}

// ---- RecordStore ----------------------------------------------------------

TEST(RecordStoreTest, RamOnlyAppendReadBack) {
  RecordStore store({}, "ram_only");
  const auto records = make_records(300);
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(store.append(records[i]), i);
  store.seal();
  EXPECT_TRUE(store.status().ok());
  EXPECT_EQ(store.size(), records.size());
  EXPECT_EQ(store.spilled_bytes(), 0u);
  expect_same_records(store.materialize(), records);

  // Cursor agrees with for_each agrees with materialize.
  auto cursor = store.cursor();
  scan::ScanRecord record;
  std::size_t count = 0;
  while (cursor.next(record)) ++count;
  EXPECT_EQ(count, records.size());
  EXPECT_TRUE(cursor.error().empty());
}

TEST(RecordStoreTest, DuplicatePatchesMatchInPlaceMutation) {
  StoreOptions options;
  options.records_per_block = 8;
  RecordStore store(options, "patches");
  auto expected = make_records(40);
  for (const auto& record : expected) store.append(record);

  const snmp::EngineId other(util::Bytes{0x80, 0x00, 0x00, 0x63, 0x01});
  // Sealed record, new engine; sealed record, same engine; tail record.
  const std::size_t sealed_a = 3, sealed_b = 10, tail = 38;
  for (const std::size_t index : {sealed_a, sealed_b, sealed_b, tail}) {
    const bool differs = index != sealed_b;
    store.note_duplicate(index, differs ? &other : nullptr);
    auto& record = expected[index];
    ++record.response_count;
    if (differs && record.engine_id != other) {
      auto& extra = record.extra_engines;
      const auto it = std::lower_bound(extra.begin(), extra.end(), other);
      if (it == extra.end() || *it != other) extra.insert(it, other);
    }
  }
  store.seal();
  expect_same_records(store.materialize(), expected);
  EXPECT_GT(store.patch_count(), 0u);
}

TEST(RecordStoreTest, SpillsAndEvictsUnderResidentBudget) {
  StoreOptions options;
  options.dir = temp_dir("store_spill");
  options.max_resident_bytes = 4096;
  options.records_per_block = 32;
  const auto records = make_records(2000);
  RecordStore store(options, "spill");
  for (const auto& record : records) store.append(record);
  store.seal();
  ASSERT_TRUE(store.status().ok()) << store.status().error();
  EXPECT_GT(store.block_count(), 10u);
  EXPECT_GT(store.spilled_bytes(), 0u);
  // Eviction holds the resident encoded bytes at or under the budget.
  EXPECT_LE(store.resident_bytes(), options.max_resident_bytes);
  // Evicted blocks come back from disk bit-identically.
  expect_same_records(store.materialize(), records);
}

TEST(RecordStoreTest, RestoreContinuesBitIdentically) {
  StoreOptions options;
  options.dir = temp_dir("store_restore");
  options.records_per_block = 16;
  const auto records = make_records(150);
  const snmp::EngineId other(util::Bytes{0x80, 0x00, 0x00, 0x63, 0x02});

  // Reference: one uninterrupted store.
  RecordStore reference(options, "reference");
  for (const auto& record : records) reference.append(record);
  reference.note_duplicate(3, &other);
  reference.note_duplicate(70, nullptr);
  reference.seal();

  store::StoreManifest manifest;
  {
    RecordStore first(options, "resumed");
    for (std::size_t i = 0; i < 100; ++i) first.append(records[i]);
    first.note_duplicate(3, &other);
    first.note_duplicate(70, nullptr);
    manifest = first.manifest();
    // Crash simulation: more appends seal one block past the manifest;
    // restore must truncate it away.
    for (std::size_t i = 100; i < 120; ++i) first.append(records[i]);
  }
  auto resumed = RecordStore::restore(options, manifest);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->size(), 100u);
  for (std::size_t i = 100; i < records.size(); ++i)
    resumed->append(records[i]);
  resumed->seal();
  expect_same_records(resumed->materialize(), reference.materialize());
}

TEST(RecordStoreTest, RestoreFailsClosedOnDamagedFiles) {
  StoreOptions options;
  options.dir = temp_dir("store_damage");
  options.records_per_block = 16;
  store::StoreManifest manifest;
  {
    RecordStore store(options, "damaged");
    for (const auto& record : make_records(64)) store.append(record);
    manifest = store.manifest();
  }
  const auto seg = options.dir + "/damaged.seg";
  const auto idx = options.dir + "/damaged.idx";

  // Truncated segment: restore refuses.
  const auto seg_size = std::filesystem::file_size(seg);
  std::filesystem::resize_file(seg, seg_size - 1);
  EXPECT_EQ(RecordStore::restore(options, manifest), nullptr);
  std::filesystem::resize_file(seg, seg_size);

  // Bit flip inside a committed block: restore may succeed (the index is
  // intact) but reading the store fails closed on the CRC.
  {
    std::fstream file(seg, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(seg_size / 2));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(seg_size / 2));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(seg_size / 2));
    file.write(&byte, 1);
  }
  auto flipped = RecordStore::restore(options, manifest);
  if (flipped != nullptr) {
    auto cursor = flipped->cursor();
    scan::ScanRecord record;
    while (cursor.next(record)) {
    }
    EXPECT_FALSE(cursor.error().empty());
    EXPECT_FALSE(flipped->for_each([](const scan::ScanRecord&, std::size_t) {})
                     .ok());
  }

  // Garbage index: restore refuses.
  {
    std::ofstream file(idx, std::ios::binary | std::ios::trunc);
    file << "this is not an index";
  }
  EXPECT_EQ(RecordStore::restore(options, manifest), nullptr);
}

TEST(RecordStoreTest, ExternalSortMatchesInRamSort) {
  StoreOptions options;
  options.dir = temp_dir("store_sort");
  options.records_per_block = 16;
  auto records = make_records(500);
  // Shuffle deterministically so the sort has work to do.
  util::Rng rng(99);
  for (std::size_t i = records.size(); i > 1; --i)
    std::swap(records[i - 1], records[rng.next() % i]);

  RecordStore a(options, "sort_a");
  RecordStore b(options, "sort_b");
  for (std::size_t i = 0; i < records.size(); ++i)
    (i % 2 == 0 ? a : b).append(records[i]);
  a.seal();
  b.seal();

  // Tiny chunk forces multiple sorted runs and a real k-way merge.
  const auto sorted = store::sort_stores({&a, &b}, store::SortKey::kAddress,
                                         options, "sorted", 64);
  ASSERT_NE(sorted, nullptr);
  auto expected = records;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const scan::ScanRecord& x, const scan::ScanRecord& y) {
                     return x.target < y.target;
                   });
  expect_same_records(sorted->materialize(), expected);
}

TEST(RecordStoreTest, ManifestJsonRoundTrip) {
  store::StoreManifest manifest;
  manifest.name = "round_trip";
  manifest.committed_records = 0x1234567890abcdefULL;
  manifest.committed_bytes = ~std::uint64_t{0};
  manifest.block_count = 77;
  manifest.tail_hex = "deadbeef";
  store::RecordPatch patch;
  patch.extra_responses = 3;
  patch.extra_engines.push_back(
      snmp::EngineId(util::Bytes{0x80, 0x00, 0x1f, 0x88, 0x01}));
  manifest.patches.emplace_back(42, patch);

  std::string json;
  store::write_manifest_json(json, manifest);
  const auto parsed = obs::JsonValue::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const auto back = store::read_manifest_json(*parsed);
  EXPECT_EQ(back.name, manifest.name);
  EXPECT_EQ(back.committed_records, manifest.committed_records);
  EXPECT_EQ(back.committed_bytes, manifest.committed_bytes);
  EXPECT_EQ(back.block_count, manifest.block_count);
  EXPECT_EQ(back.tail_hex, manifest.tail_hex);
  ASSERT_EQ(back.patches.size(), 1u);
  EXPECT_EQ(back.patches[0].first, 42u);
  EXPECT_EQ(back.patches[0].second.extra_responses, 3u);
  EXPECT_EQ(back.patches[0].second.extra_engines,
            manifest.patches[0].second.extra_engines);
}

// ---- ScanResult accessors -------------------------------------------------

TEST(ScanResultAccessors, ByTargetIsMemoizedAndRebuiltOnGrowth) {
  scan::ScanResult result;
  result.records = make_records(20);
  const auto& first = result.by_target();
  EXPECT_EQ(first.size(), 20u);
  // Second call returns the same map object, not a rebuild.
  EXPECT_EQ(&result.by_target(), &first);
  result.records.push_back(make_record(500));
  const auto& rebuilt = result.by_target();
  EXPECT_EQ(rebuilt.size(), 21u);
  EXPECT_TRUE(rebuilt.count(make_record(500).target));
}

// ---- campaigns and pipeline -----------------------------------------------

class StoreCampaignTest : public ::testing::Test {
 protected:
  static scan::CampaignOptions base_options() {
    scan::CampaignOptions options;
    options.seed = 77;
    options.shards = 4;
    options.fabric.probe_loss = 0.02;
    options.fabric.response_loss = 0.02;
    return options;
  }

  static topo::World fresh_world() {
    return topo::generate_world(topo::WorldConfig::tiny());
  }
};

TEST_F(StoreCampaignTest, StoreBackedCampaignBitIdenticalAtAnyThreadCount) {
  topo::World reference_world = fresh_world();
  const auto reference =
      scan::run_two_scan_campaign(reference_world, base_options());
  ASSERT_GT(reference.scan1.responsive(), 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto options = base_options();
    options.parallel.threads = threads;
    options.store.dir = temp_dir("campaign_t" + std::to_string(threads));
    options.store.records_per_block = 8;
    options.store.max_resident_bytes = 4096;
    topo::World world = fresh_world();
    const auto pair = scan::run_two_scan_campaign(world, options);
    EXPECT_TRUE(pair.scan1.store_backed());
    EXPECT_TRUE(pair.scan2.store_backed());
    EXPECT_TRUE(pair.scan1.records.empty());
    expect_same_scan(pair.scan1, reference.scan1);
    expect_same_scan(pair.scan2, reference.scan2);
  }
}

TEST_F(StoreCampaignTest, KillResumeThroughStoreCheckpointsBitIdentical) {
  topo::World reference_world = fresh_world();
  const auto reference =
      scan::run_two_scan_campaign(reference_world, base_options());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto tag = "store_resume_t" + std::to_string(threads);
    const auto path = ::testing::TempDir() + tag + ".json";
    scan::remove_checkpoint(path);

    auto killed_options = base_options();
    killed_options.parallel.threads = threads;
    killed_options.checkpoint_path = path;
    killed_options.checkpoint_every_n_targets = 16;
    killed_options.abort_after_checkpoints = 1;
    killed_options.store.dir = temp_dir(tag);
    killed_options.store.records_per_block = 8;
    topo::World killed_world = fresh_world();
    const auto killed = scan::run_two_scan_campaign(killed_world, killed_options);
    EXPECT_TRUE(killed.interrupted) << threads << " threads";
    const auto checkpoint = scan::load_checkpoint(path);
    ASSERT_TRUE(checkpoint.has_value());
    // The mid-scan checkpoint carries per-shard store manifests, not
    // embedded records.
    bool has_manifest = false;
    for (const auto& shard : checkpoint->shard_states) {
      EXPECT_TRUE(shard.partial.records.empty());
      has_manifest = has_manifest || shard.store_manifest.has_value();
    }
    EXPECT_TRUE(has_manifest);

    auto resume_options = killed_options;
    resume_options.abort_after_checkpoints = 0;
    topo::World resume_world = fresh_world();
    const auto resumed =
        scan::run_two_scan_campaign(resume_world, resume_options);
    EXPECT_FALSE(resumed.interrupted);
    expect_same_scan(resumed.scan1, reference.scan1);
    expect_same_scan(resumed.scan2, reference.scan2);
    EXPECT_FALSE(scan::load_checkpoint(path).has_value());
  }
}

TEST_F(StoreCampaignTest, DamagedStoreFilesStillResumeBitIdentically) {
  topo::World reference_world = fresh_world();
  const auto reference =
      scan::run_two_scan_campaign(reference_world, base_options());

  const auto tag = std::string("store_resume_damaged");
  const auto path = ::testing::TempDir() + tag + ".json";
  scan::remove_checkpoint(path);
  auto killed_options = base_options();
  killed_options.checkpoint_path = path;
  killed_options.checkpoint_every_n_targets = 16;
  killed_options.abort_after_checkpoints = 1;
  killed_options.store.dir = temp_dir(tag);
  killed_options.store.records_per_block = 8;
  topo::World killed_world = fresh_world();
  const auto killed = scan::run_two_scan_campaign(killed_world, killed_options);
  EXPECT_TRUE(killed.interrupted);

  // Corrupt every store file the kill left behind; the resume falls back
  // to re-running those shards from scratch — same bits, just slower.
  for (const auto& entry :
       std::filesystem::directory_iterator(killed_options.store.dir)) {
    std::ofstream file(entry.path(), std::ios::binary | std::ios::trunc);
    file << "garbage";
  }
  auto resume_options = killed_options;
  resume_options.abort_after_checkpoints = 0;
  topo::World resume_world = fresh_world();
  const auto resumed =
      scan::run_two_scan_campaign(resume_world, resume_options);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_scan(resumed.scan1, reference.scan1);
  expect_same_scan(resumed.scan2, reference.scan2);
}

// ---- filters: streaming equivalence --------------------------------------

TEST(StoreFilterStream, ApplyStreamMatchesApplyOnCampaignData) {
  auto world = topo::generate_world(topo::WorldConfig::tiny());
  scan::CampaignOptions options;
  options.seed = 31;
  options.shards = 2;
  const auto pair = scan::run_two_scan_campaign(world, options);
  auto joined = core::join_scans(pair.scan1, pair.scan2);
  ASSERT_GT(joined.size(), 0u);
  // Force a promiscuous payload: reuse one record's engine payload under a
  // different enterprise so the global stage has something to drop.
  if (joined.size() > 4) {
    auto raw = joined[0].first.engine_id.raw();
    if (raw.size() > 4) {
      raw[1] = 0x00;
      raw[2] = 0x00;
      raw[3] = 0x63;
      joined[4].first.engine_id = snmp::EngineId(raw);
      joined[4].second.engine_id = joined[4].first.engine_id;
    }
  }

  const core::FilterPipeline pipeline{core::FilterOptions{}};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ParallelOptions parallel;
    parallel.threads = threads;
    auto in_place = joined;
    const auto report = pipeline.apply(in_place, parallel);
    std::vector<core::JoinedRecord> streamed;
    const auto stream_report = pipeline.apply_stream(joined, streamed, parallel);

    EXPECT_EQ(stream_report.input, report.input);
    EXPECT_EQ(stream_report.output, report.output);
    EXPECT_EQ(stream_report.dropped, report.dropped);
    ASSERT_EQ(streamed.size(), in_place.size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
      EXPECT_EQ(streamed[i].address, in_place[i].address) << "record " << i;
  }
}

// ---- full pipeline --------------------------------------------------------

class StorePipelineTest : public ::testing::Test {
 protected:
  static core::PipelineOptions base_options() {
    core::PipelineOptions options;
    options.world = topo::WorldConfig::tiny();
    options.seed = 20210413;
    return options;
  }
};

void expect_same_joined(const std::vector<core::JoinedRecord>& a,
                        const std::vector<core::JoinedRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].address, b[i].address) << "joined " << i;
    EXPECT_EQ(a[i].first.engine_id, b[i].first.engine_id);
    EXPECT_EQ(a[i].second.engine_id, b[i].second.engine_id);
    EXPECT_EQ(a[i].first.send_time, b[i].first.send_time);
    EXPECT_EQ(a[i].second.send_time, b[i].second.send_time);
    EXPECT_EQ(a[i].first.receive_time, b[i].first.receive_time);
    EXPECT_EQ(a[i].first.response_count, b[i].first.response_count);
    EXPECT_EQ(a[i].first.extra_engines, b[i].first.extra_engines);
  }
}

TEST_F(StorePipelineTest, StoreModePipelineBitIdenticalAtAnyThreadCount) {
  const auto reference = core::run_full_pipeline(base_options());
  ASSERT_GT(reference.v4_joined.size(), 0u);
  ASSERT_GT(reference.devices.size(), 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto options = base_options();
    options.parallel.threads = threads;
    options.store.dir = temp_dir("pipeline_t" + std::to_string(threads));
    options.store.records_per_block = 8;
    options.store.max_resident_bytes = 4096;
    const auto result = core::run_full_pipeline(options);

    EXPECT_TRUE(result.v4_campaign.scan1.store_backed());
    EXPECT_TRUE(result.v6_campaign.scan1.store_backed());
    expect_same_joined(result.v4_joined, reference.v4_joined);
    expect_same_joined(result.v6_joined, reference.v6_joined);
    expect_same_joined(result.v4_records, reference.v4_records);
    expect_same_joined(result.v6_records, reference.v6_records);
    EXPECT_EQ(result.v4_join_stats.overlap, reference.v4_join_stats.overlap);
    EXPECT_EQ(result.v4_join_stats.first_only,
              reference.v4_join_stats.first_only);
    EXPECT_EQ(result.v4_join_stats.second_only,
              reference.v4_join_stats.second_only);
    EXPECT_EQ(result.v4_report.dropped, reference.v4_report.dropped);
    EXPECT_EQ(result.v6_report.dropped, reference.v6_report.dropped);
    ASSERT_EQ(result.resolution.sets.size(), reference.resolution.sets.size());
    for (std::size_t i = 0; i < result.resolution.sets.size(); ++i) {
      EXPECT_EQ(result.resolution.sets[i].addresses,
                reference.resolution.sets[i].addresses);
      EXPECT_EQ(result.resolution.sets[i].engine_id,
                reference.resolution.sets[i].engine_id);
    }
    ASSERT_EQ(result.devices.size(), reference.devices.size());
    EXPECT_EQ(result.router_device_count(), reference.router_device_count());
  }
}

}  // namespace
}  // namespace snmpv3fp
