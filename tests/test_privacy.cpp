// AES-128 (FIPS 197) / CFB-128 and the RFC 3826 usmAesCfb128Protocol
// privacy path, through to an end-to-end authPriv agent exchange.
#include <gtest/gtest.h>

#include "sim/agent.hpp"
#include "snmp/usm.hpp"
#include "util/aes.hpp"

namespace snmpv3fp {
namespace {

using util::Bytes;
using util::ByteView;

// ---------------------------------------------------------------------------
// AES-128 — FIPS 197 appendix vectors
// ---------------------------------------------------------------------------

TEST(Aes128, Fips197AppendixB) {
  const auto key = util::from_hex("2b7e151628aed2a6abf7158809cf4f3c").value();
  auto block = util::from_hex("3243f6a8885a308d313198a2e0370734").value();
  util::Aes128 cipher{ByteView(key)};
  cipher.encrypt_block(block.data());
  EXPECT_EQ(util::to_hex(block), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Fips197AppendixC1) {
  const auto key = util::from_hex("000102030405060708090a0b0c0d0e0f").value();
  auto block = util::from_hex("00112233445566778899aabbccddeeff").value();
  util::Aes128 cipher{ByteView(key)};
  cipher.encrypt_block(block.data());
  EXPECT_EQ(util::to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, CfbNistSp800_38aVector) {
  // NIST SP 800-38A F.3.13 (CFB128-AES128.Encrypt, first segment).
  const auto key = util::from_hex("2b7e151628aed2a6abf7158809cf4f3c").value();
  const auto iv = util::from_hex("000102030405060708090a0b0c0d0e0f").value();
  const auto plaintext =
      util::from_hex("6bc1bee22e409f96e93d7e117393172a").value();
  util::Aes128 cipher{ByteView(key)};
  const auto ciphertext = cipher.cfb_encrypt(iv, plaintext);
  EXPECT_EQ(util::to_hex(ciphertext), "3b3fd92eb72dad20333449f8e83cfb4a");
  EXPECT_EQ(cipher.cfb_decrypt(iv, ciphertext), plaintext);
}

class CfbRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CfbRoundTrip, EncryptDecryptIdentity) {
  util::Rng rng(GetParam() * 7 + 1);
  Bytes key(16), iv(16), plaintext(GetParam());
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next());
  util::Aes128 cipher{ByteView(key)};
  const auto ciphertext = cipher.cfb_encrypt(iv, plaintext);
  EXPECT_EQ(ciphertext.size(), plaintext.size());  // CFB is length-preserving
  if (!plaintext.empty()) EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(cipher.cfb_decrypt(iv, ciphertext), plaintext);
}

// Short, block-aligned and ragged lengths (scoped PDUs are rarely aligned).
INSTANTIATE_TEST_SUITE_P(Lengths, CfbRoundTrip,
                         ::testing::Values(1u, 15u, 16u, 17u, 64u, 100u, 333u));

// ---------------------------------------------------------------------------
// RFC 3826 scoped-PDU privacy
// ---------------------------------------------------------------------------

snmp::V3Message plain_get(const snmp::EngineId& engine_id) {
  auto message = snmp::make_discovery_request(9100, 9200);
  message.usm.authoritative_engine_id = engine_id;
  message.usm.engine_boots = 148;
  message.usm.engine_time = 10043812;
  message.usm.user_name = "netops";
  message.scoped_pdu.context_engine_id = engine_id.raw();
  message.scoped_pdu.pdu.bindings = {
      {snmp::kOidSysDescr, snmp::VarValue::null()}};
  return message;
}

TEST(Privacy, EncryptDecryptRoundTrip) {
  const auto engine_id = snmp::EngineId::make_netsnmp(0xc0ffee);
  const auto priv_key = snmp::derive_privacy_key(
      snmp::AuthProtocol::kHmacSha1_96, "privpass", engine_id);
  EXPECT_EQ(priv_key.size(), 16u);

  const auto encrypted =
      snmp::encrypt_scoped_pdu(priv_key, 0x0123456789abcdefULL,
                               plain_get(engine_id));
  EXPECT_TRUE(encrypted.header.msg_flags & snmp::kFlagPriv);
  EXPECT_EQ(encrypted.usm.privacy_parameters.size(), 8u);
  ASSERT_TRUE(encrypted.encrypted_scoped_pdu.has_value());
  EXPECT_TRUE(encrypted.scoped_pdu.pdu.bindings.empty());

  const auto decrypted = snmp::decrypt_scoped_pdu(priv_key, encrypted);
  ASSERT_TRUE(decrypted.ok()) << decrypted.error();
  ASSERT_EQ(decrypted.value().scoped_pdu.pdu.bindings.size(), 1u);
  EXPECT_EQ(decrypted.value().scoped_pdu.pdu.bindings[0].oid,
            snmp::kOidSysDescr);
  EXPECT_EQ(decrypted.value().scoped_pdu.context_engine_id, engine_id.raw());
}

TEST(Privacy, EncryptedMessageSurvivesWire) {
  const auto engine_id = snmp::EngineId::make_netsnmp(0xc0ffee);
  const auto priv_key = snmp::derive_privacy_key(
      snmp::AuthProtocol::kHmacSha1_96, "privpass", engine_id);
  const auto encrypted =
      snmp::encrypt_scoped_pdu(priv_key, 42, plain_get(engine_id));
  const auto wire = encrypted.encode();
  const auto decoded = snmp::V3Message::decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_TRUE(decoded.value().encrypted_scoped_pdu.has_value());
  const auto decrypted = snmp::decrypt_scoped_pdu(priv_key, decoded.value());
  ASSERT_TRUE(decrypted.ok()) << decrypted.error();
  EXPECT_EQ(decrypted.value().scoped_pdu.pdu.request_id, 9200);
}

TEST(Privacy, WrongKeyFailsToParse) {
  const auto engine_id = snmp::EngineId::make_netsnmp(0xc0ffee);
  const auto good = snmp::derive_privacy_key(snmp::AuthProtocol::kHmacSha1_96,
                                             "privpass", engine_id);
  const auto bad = snmp::derive_privacy_key(snmp::AuthProtocol::kHmacSha1_96,
                                            "wrong", engine_id);
  const auto encrypted =
      snmp::encrypt_scoped_pdu(good, 42, plain_get(engine_id));
  EXPECT_FALSE(snmp::decrypt_scoped_pdu(bad, encrypted).ok());
}

TEST(Privacy, CiphertextHidesPlaintextOids) {
  const auto engine_id = snmp::EngineId::make_netsnmp(0xc0ffee);
  const auto key = snmp::derive_privacy_key(snmp::AuthProtocol::kHmacSha1_96,
                                            "privpass", engine_id);
  const auto plain = plain_get(engine_id);
  // The BER encoding of sysDescr's OID appears in the plaintext message...
  const auto oid_wire = asn1::encode_oid(snmp::kOidSysDescr);
  const auto plain_wire = plain.encode();
  const auto contains = [](const Bytes& haystack, const Bytes& needle) {
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
  };
  EXPECT_TRUE(contains(plain_wire, oid_wire));
  // ...but not in the encrypted one.
  const auto encrypted = snmp::encrypt_scoped_pdu(key, 42, plain);
  EXPECT_FALSE(contains(encrypted.encode(), oid_wire));
}

// ---------------------------------------------------------------------------
// End-to-end authPriv exchange with an agent
// ---------------------------------------------------------------------------

TEST(Privacy, AgentAnswersAuthPrivGet) {
  topo::Device device;
  device.kind = topo::DeviceKind::kRouter;
  device.vendor = &topo::vendor_profile("Cisco");
  topo::Interface itf;
  itf.mac = net::MacAddress::from_oui(0x00000c, 0x42);
  itf.v4 = net::Ipv4(192, 0, 2, 9);
  device.interfaces.push_back(itf);
  device.snmpv3_enabled = true;
  device.engine_id = snmp::EngineId::make_mac(9, itf.mac);
  device.reboots = {-util::kDay};
  device.boots_before_history = 1;
  device.usm_user = "netops";
  device.usm_auth_password = "authpass";
  device.usm_priv_password = "privpass";

  constexpr auto kProto = snmp::AuthProtocol::kHmacSha1_96;
  const auto auth_key =
      snmp::derive_localized_key(kProto, "authpass", device.engine_id);
  const auto priv_key =
      snmp::derive_privacy_key(kProto, "privpass", device.engine_id);

  auto request = plain_get(device.engine_id);
  request = snmp::encrypt_scoped_pdu(priv_key, 777, std::move(request));
  request = snmp::authenticate(kProto, auth_key, std::move(request));

  util::Rng rng(5);
  const auto responses = sim::handle_udp(device, request.encode(), 0, rng);
  ASSERT_EQ(responses.size(), 1u);

  const auto response = snmp::V3Message::decode(responses.front());
  ASSERT_TRUE(response.ok());
  // The response is authenticated AND encrypted.
  EXPECT_TRUE(response.value().header.msg_flags & snmp::kFlagAuth);
  EXPECT_TRUE(response.value().header.msg_flags & snmp::kFlagPriv);
  EXPECT_TRUE(snmp::verify_authentication(kProto, auth_key, response.value()));
  const auto decrypted = snmp::decrypt_scoped_pdu(priv_key, response.value());
  ASSERT_TRUE(decrypted.ok()) << decrypted.error();
  const auto& bindings = decrypted.value().scoped_pdu.pdu.bindings;
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_NE(bindings[0].value.as_string().value_or("").find("Cisco"),
            std::string::npos);

  // Tampered ciphertext fails authentication before decryption even runs.
  auto tampered = request;
  (*tampered.encrypted_scoped_pdu)[3] ^= 0x40;
  EXPECT_TRUE(sim::handle_udp(device, tampered.encode(), 0, rng).empty());
}

}  // namespace
}  // namespace snmpv3fp
