#include <gtest/gtest.h>

#include "baselines/compare.hpp"
#include "baselines/midar.hpp"
#include "baselines/nmap_lite.hpp"
#include "baselines/router_names.hpp"
#include "baselines/speedtrap.hpp"
#include "baselines/ttl_fingerprint.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::baselines {
namespace {

// ---------------------------------------------------------------------------
// Monotonic bounds test
// ---------------------------------------------------------------------------

TEST(Mbt, AcceptsSharedCounterInterleaving) {
  std::vector<std::pair<util::VTime, std::uint32_t>> samples;
  std::uint32_t counter = 100;
  for (int i = 0; i < 8; ++i) {
    samples.emplace_back(i * util::kSecond, counter % 65536);
    counter += 50;  // 50 ids/s
  }
  EXPECT_TRUE(monotonic_bounds_test(samples, 65536, 100.0));
}

TEST(Mbt, AcceptsWrapAround) {
  std::vector<std::pair<util::VTime, std::uint32_t>> samples = {
      {0, 65500}, {util::kSecond, 20}, {2 * util::kSecond, 80}};
  EXPECT_TRUE(monotonic_bounds_test(samples, 65536, 100.0));
}

TEST(Mbt, RejectsOffsetCounters) {
  // Two counters with the same velocity but bases 30k apart, interleaved.
  std::vector<std::pair<util::VTime, std::uint32_t>> samples;
  for (int i = 0; i < 4; ++i) {
    samples.emplace_back((2 * i) * util::kSecond, (100 + i * 50) % 65536);
    samples.emplace_back((2 * i + 1) * util::kSecond,
                         (30100 + i * 50) % 65536);
  }
  EXPECT_FALSE(monotonic_bounds_test(samples, 65536, 100.0));
}

TEST(Mbt, RejectsRandomIds) {
  util::Rng rng(5);
  std::vector<std::pair<util::VTime, std::uint32_t>> samples;
  for (int i = 0; i < 8; ++i)
    samples.emplace_back(i * util::kSecond,
                         static_cast<std::uint32_t>(rng.next() % 65536));
  EXPECT_FALSE(monotonic_bounds_test(samples, 65536, 100.0));
}

TEST(Mbt, RejectsTooFewSamples) {
  EXPECT_FALSE(monotonic_bounds_test({{0, 1}}, 65536, 100.0));
  EXPECT_FALSE(monotonic_bounds_test({}, 65536, 100.0));
}

// ---------------------------------------------------------------------------
// MIDAR / Speedtrap on ground truth
// ---------------------------------------------------------------------------

class BaselineWorld : public ::testing::Test {
 protected:
  BaselineWorld()
      : world_(topo::generate_world(topo::WorldConfig::tiny())),
        stack_(world_, 99) {}

  std::int64_t truth_of(const net::IpAddress& address) const {
    const auto index = world_.device_index_at(address);
    return index == topo::kNoDevice ? -1 : static_cast<std::int64_t>(index);
  }

  topo::World world_;
  sim::StackSimulator stack_;
};

TEST_F(BaselineWorld, MidarPrecisionIsHigh) {
  std::vector<net::IpAddress> targets = world_.addresses(net::Family::kIpv4);
  if (targets.size() > 4000) targets.resize(4000);
  const auto result = run_midar(stack_, targets, 0);

  // Output must be a partition of the v4 targets.
  std::size_t total = 0;
  for (const auto& set : result.alias_sets) total += set.size();
  EXPECT_EQ(total, targets.size());

  const auto metrics = pair_metrics(
      result.alias_sets,
      [&](const net::IpAddress& a) { return truth_of(a); }, targets);
  if (metrics.inferred_pairs > 0) EXPECT_GT(metrics.precision(), 0.9);
  // Random/fast/filtered counters mean recall is far below 1 — the paper's
  // core argument for SNMPv3.
  EXPECT_LT(metrics.recall(), 0.8);
}

TEST_F(BaselineWorld, SpeedtrapPrecisionIsHigh) {
  std::vector<net::IpAddress> targets = world_.addresses(net::Family::kIpv6);
  if (targets.size() > 3000) targets.resize(3000);
  if (targets.size() < 10) GTEST_SKIP() << "tiny world lacks IPv6";
  const auto result = run_speedtrap(stack_, targets, 0);
  const auto metrics = pair_metrics(
      result.alias_sets,
      [&](const net::IpAddress& a) { return truth_of(a); }, targets);
  if (metrics.inferred_pairs > 0) EXPECT_GT(metrics.precision(), 0.85);
}

// ---------------------------------------------------------------------------
// Router Names
// ---------------------------------------------------------------------------

TEST(RouterNames, SuffixRuleExtraction) {
  EXPECT_EQ(extract_suffix_rule("xe-0-0-1.fra-cr12.as333.eu.example.net"),
            "fra-cr12.as333.eu.example.net");
  // Nothing device-specific left after stripping: rejected.
  EXPECT_EQ(extract_suffix_rule("ip-8-1-2-3.as333.eu.example.net"), "");
  EXPECT_EQ(extract_suffix_rule("nodots"), "");
}

TEST(RouterNames, DashRuleExtraction) {
  EXPECT_EQ(extract_dash_rule("fra-cr12-xe0-0-1.as333.eu.example.net"),
            "fra-cr12.as333.eu.example.net");
  EXPECT_EQ(extract_dash_rule("fra-cr12-eth3.as333.eu.example.net"),
            "fra-cr12.as333.eu.example.net");
  // No interface suffix: rejected.
  EXPECT_EQ(extract_dash_rule("www.as333.eu.example.net"), "");
}

TEST(RouterNames, GroupsInterfacesOfOneRouter) {
  std::vector<topo::PtrRecord> records;
  for (int i = 0; i < 4; ++i)
    records.push_back({net::IpAddress(net::Ipv4(8, 0, 0,
                                                static_cast<std::uint8_t>(i))),
                       "xe-0-0-" + std::to_string(i) +
                           ".fra-cr1.as1.eu.example.net"});
  records.push_back({net::IpAddress(net::Ipv4(8, 0, 1, 1)),
                     "xe-0-0-0.ams-cr2.as1.eu.example.net"});
  const auto result = run_router_names(records);
  EXPECT_EQ(result.domains_with_rule, 1u);
  ASSERT_EQ(result.alias_sets.size(), 2u);
  const auto& big = result.alias_sets[0].size() == 4 ? result.alias_sets[0]
                                                     : result.alias_sets[1];
  EXPECT_EQ(big.size(), 4u);
}

TEST(RouterNames, IpEncodingSchemeYieldsNoAliases) {
  std::vector<topo::PtrRecord> records;
  for (int i = 0; i < 20; ++i)
    records.push_back({net::IpAddress(net::Ipv4(8, 0, 0,
                                                static_cast<std::uint8_t>(i))),
                       "ip-8-0-0-" + std::to_string(i) +
                           ".as2.na.example.net"});
  const auto result = run_router_names(records);
  for (const auto& set : result.alias_sets) EXPECT_EQ(set.size(), 1u);
}

TEST_F(BaselineWorld, RouterNamesPrecisionOnWorld) {
  const auto records = topo::export_ptr_records(world_);
  if (records.size() < 50) GTEST_SKIP() << "tiny world has few PTR records";
  const auto result = run_router_names(records);
  std::vector<net::IpAddress> universe;
  for (const auto& record : records) universe.push_back(record.address);
  const auto metrics = pair_metrics(
      result.alias_sets,
      [&](const net::IpAddress& a) { return truth_of(a); }, universe);
  if (metrics.inferred_pairs > 0) EXPECT_GT(metrics.precision(), 0.9);
}

// ---------------------------------------------------------------------------
// Nmap / TTL
// ---------------------------------------------------------------------------

TEST_F(BaselineWorld, NmapSilentOnClosedRouter) {
  NmapLite nmap;
  for (const auto& device : world_.devices) {
    if (device.tcp_open) continue;
    for (const auto& itf : device.interfaces) {
      if (!itf.v4) continue;
      const auto fp = nmap.fingerprint(stack_, net::IpAddress(*itf.v4), 0);
      EXPECT_EQ(fp.outcome, NmapOutcome::kNoResult);
      EXPECT_TRUE(fp.vendor.empty());
      return;
    }
  }
}

TEST_F(BaselineWorld, NmapMatchesOpenHosts) {
  NmapLite nmap;
  std::size_t checked = 0, correct = 0;
  for (const auto& device : world_.devices) {
    if (!device.tcp_open) continue;
    for (const auto& itf : device.interfaces) {
      if (!itf.v4) continue;
      const auto fp = nmap.fingerprint(stack_, net::IpAddress(*itf.v4), 0);
      if (fp.outcome == NmapOutcome::kNoResult) continue;
      ++checked;
      correct += fp.vendor == device.vendor->name;
      break;
    }
    if (checked >= 25) break;
  }
  if (checked == 0) GTEST_SKIP() << "no open hosts in tiny world";
  // The trained database should identify most open hosts.
  EXPECT_GT(correct * 10, checked * 7);
}

TEST(Ttl, InitialTtlInference) {
  EXPECT_EQ(infer_initial_ttl(20), 32);
  EXPECT_EQ(infer_initial_ttl(32), 32);
  EXPECT_EQ(infer_initial_ttl(50), 64);
  EXPECT_EQ(infer_initial_ttl(100), 128);
  EXPECT_EQ(infer_initial_ttl(240), 255);
}

TEST_F(BaselineWorld, TtlFingerprintIsAmbiguous) {
  for (const auto& device : world_.devices) {
    if (device.vendor->name != "Cisco") continue;
    for (const auto& itf : device.interfaces) {
      if (!itf.v4) continue;
      const auto fp = ttl_fingerprint(stack_, *itf.v4, 0);
      if (!fp.responsive) continue;
      EXPECT_EQ(fp.initial_ttl, 255);
      // The Cisco/Huawei collision (paper §7.1): both appear as candidates.
      const auto has = [&](const char* vendor) {
        return std::find(fp.candidate_vendors.begin(),
                         fp.candidate_vendors.end(),
                         vendor) != fp.candidate_vendors.end();
      };
      EXPECT_TRUE(has("Cisco"));
      EXPECT_TRUE(has("Huawei"));
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// compare helpers
// ---------------------------------------------------------------------------

TEST(Compare, ExactAndPartialOverlap) {
  const net::IpAddress a = net::Ipv4(8, 0, 0, 1), b = net::Ipv4(8, 0, 0, 2),
                       c = net::Ipv4(8, 0, 0, 3), d = net::Ipv4(8, 0, 0, 4);
  const AliasSets ours = {{a, b}, {c}};
  const AliasSets theirs = {{b, a}, {c, d}, {d}};
  const auto comparison = compare_alias_sets(ours, theirs);
  EXPECT_EQ(comparison.exact_matches, 1u);   // {a,b} matches (order-free)
  EXPECT_EQ(comparison.partial_overlaps, 2u);  // {a,b} and {c,d}
}

TEST(Compare, PairMetrics) {
  const net::IpAddress a = net::Ipv4(8, 0, 0, 1), b = net::Ipv4(8, 0, 0, 2),
                       c = net::Ipv4(8, 0, 0, 3);
  // Truth: a and b on device 1, c on device 2.
  const auto truth = [&](const net::IpAddress& addr) -> std::int64_t {
    if (addr == c) return 2;
    return 1;
  };
  const AliasSets inferred = {{a, b, c}};  // wrongly includes c
  const auto metrics = pair_metrics(inferred, truth, {a, b, c});
  EXPECT_EQ(metrics.inferred_pairs, 3u);
  EXPECT_EQ(metrics.correct_pairs, 1u);
  EXPECT_EQ(metrics.truth_pairs, 1u);
  EXPECT_DOUBLE_EQ(metrics.precision(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.recall(), 1.0);
}

TEST(Compare, DealiasedAddresses) {
  const AliasSets sets = {{net::Ipv4(8, 0, 0, 1), net::Ipv4(8, 0, 0, 2)},
                          {net::Ipv4(8, 0, 0, 3)}};
  EXPECT_EQ(dealiased_addresses(sets), 2u);
}

}  // namespace
}  // namespace snmpv3fp::baselines
