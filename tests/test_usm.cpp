#include <gtest/gtest.h>

#include "snmp/usm.hpp"
#include "util/digest.hpp"

namespace snmpv3fp {
namespace {

using util::Bytes;
using util::ByteView;

std::string hex(ByteView data) { return util::to_hex(data); }

ByteView view(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------------------
// MD5 — RFC 1321 appendix A.5 test suite
// ---------------------------------------------------------------------------

struct DigestCase {
  const char* input;
  const char* digest;
};

class Md5Vectors : public ::testing::TestWithParam<DigestCase> {};

TEST_P(Md5Vectors, MatchesRfc1321) {
  const auto digest = util::Md5::hash(view(GetParam().input));
  EXPECT_EQ(hex(digest), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5Vectors,
    ::testing::Values(
        DigestCase{"", "d41d8cd98f00b204e9800998ecf8427e"},
        DigestCase{"a", "0cc175b9c0f1b6a831c399e269772661"},
        DigestCase{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        DigestCase{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        DigestCase{"abcdefghijklmnopqrstuvwxyz",
                   "c3fcd3d76192e4007dfb496cca67e13b"},
        DigestCase{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                   "56789",
                   "d174ab98d277d9f5a5611c2c9f419d9f"},
        DigestCase{"1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890",
                   "57edf4a22be3c955ac49da2e2107b67a"}));

// ---------------------------------------------------------------------------
// SHA-1 — RFC 3174 / FIPS 180 vectors
// ---------------------------------------------------------------------------

class Sha1Vectors : public ::testing::TestWithParam<DigestCase> {};

TEST_P(Sha1Vectors, MatchesFips180) {
  const auto digest = util::Sha1::hash(view(GetParam().input));
  EXPECT_EQ(hex(digest), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha1Vectors,
    ::testing::Values(
        DigestCase{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        DigestCase{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        DigestCase{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"}));

TEST(Sha1, MillionAs) {
  util::Sha1 sha;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  EXPECT_EQ(hex(sha.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md5, StreamingMatchesOneShot) {
  // Feed in awkward chunk sizes across block boundaries.
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  util::Md5 streaming;
  std::size_t offset = 0;
  for (const std::size_t chunk : {1u, 63u, 64u, 65u, 500u, 307u}) {
    streaming.update(ByteView(data).subspan(offset, chunk));
    offset += chunk;
  }
  streaming.update(ByteView(data).subspan(offset));
  EXPECT_EQ(streaming.finish(), util::Md5::hash(data));
}

// ---------------------------------------------------------------------------
// HMAC — RFC 2202 vectors
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc2202Md5) {
  const Bytes key(16, 0x0b);
  EXPECT_EQ(hex(util::hmac_md5(key, view("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
  EXPECT_EQ(hex(util::hmac_md5(view("Jefe"),
                               view("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
  const Bytes long_key(80, 0xaa);
  EXPECT_EQ(hex(util::hmac_md5(
                long_key,
                view("Test Using Larger Than Block-Size Key - Hash Key "
                     "First"))),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

TEST(Hmac, Rfc2202Sha1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(util::hmac_sha1(key, view("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(hex(util::hmac_sha1(view("Jefe"),
                                view("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

// ---------------------------------------------------------------------------
// RFC 3414 appendix A key derivation vectors
// ---------------------------------------------------------------------------

snmp::EngineId rfc3414_engine_id() {
  // A.3: engineID 000000000000000000000002 (12 bytes).
  Bytes raw(12, 0x00);
  raw.back() = 0x02;
  return snmp::EngineId(raw);
}

TEST(Usm, Rfc3414Md5KeyDerivation) {
  const auto ku =
      snmp::password_to_key(snmp::AuthProtocol::kHmacMd5_96, "maplesyrup");
  EXPECT_EQ(hex(ku), "9faf3283884e92834ebc9847d8edd963");
  const auto localized = snmp::localize_key(snmp::AuthProtocol::kHmacMd5_96,
                                            ku, rfc3414_engine_id());
  EXPECT_EQ(hex(localized), "526f5eed9fcce26f8964c2930787d82b");
}

TEST(Usm, Rfc3414Sha1KeyDerivation) {
  const auto ku =
      snmp::password_to_key(snmp::AuthProtocol::kHmacSha1_96, "maplesyrup");
  EXPECT_EQ(hex(ku), "9fb5cc0381497b3793528939ff788d5d79145211");
  const auto localized = snmp::localize_key(snmp::AuthProtocol::kHmacSha1_96,
                                            ku, rfc3414_engine_id());
  EXPECT_EQ(hex(localized), "6695febc9288e36282235fc7151f128497b38f3f");
}

TEST(Usm, DifferentEngineIdsLocalizeDifferently) {
  const auto ku =
      snmp::password_to_key(snmp::AuthProtocol::kHmacSha1_96, "maplesyrup");
  const auto other = snmp::EngineId::make_mac(
      9, net::MacAddress::from_oui(0x00000c, 0x123456));
  EXPECT_NE(snmp::localize_key(snmp::AuthProtocol::kHmacSha1_96, ku,
                               rfc3414_engine_id()),
            snmp::localize_key(snmp::AuthProtocol::kHmacSha1_96, ku, other));
}

// ---------------------------------------------------------------------------
// Message authentication + offline brute force
// ---------------------------------------------------------------------------

snmp::V3Message make_management_request(const snmp::EngineId& engine_id) {
  auto message = snmp::make_discovery_request(6100, 6200);
  message.usm.authoritative_engine_id = engine_id;
  message.usm.engine_boots = 148;
  message.usm.engine_time = 10043812;
  message.usm.user_name = "netops";
  message.scoped_pdu.context_engine_id = engine_id.raw();
  message.scoped_pdu.pdu.bindings = {
      {snmp::kOidSysDescr, snmp::VarValue::null()}};
  return message;
}

class UsmAuth : public ::testing::TestWithParam<snmp::AuthProtocol> {};

TEST_P(UsmAuth, SignVerifyRoundTrip) {
  const auto engine_id = snmp::EngineId::make_mac(
      9, net::MacAddress::from_oui(0x00000c, 0x31db80));
  const auto key =
      snmp::derive_localized_key(GetParam(), "s3cr3t-pw", engine_id);
  const auto signed_message = snmp::authenticate(
      GetParam(), key, make_management_request(engine_id));
  EXPECT_EQ(signed_message.usm.authentication_parameters.size(),
            snmp::kAuthParamsLength);
  EXPECT_TRUE(signed_message.header.msg_flags & snmp::kFlagAuth);
  EXPECT_TRUE(snmp::verify_authentication(GetParam(), key, signed_message));

  // Any bit flip in the scoped PDU invalidates the MAC.
  auto tampered = signed_message;
  tampered.scoped_pdu.pdu.request_id ^= 1;
  EXPECT_FALSE(snmp::verify_authentication(GetParam(), key, tampered));

  // Wrong key fails.
  const auto wrong =
      snmp::derive_localized_key(GetParam(), "other-pw", engine_id);
  EXPECT_FALSE(snmp::verify_authentication(GetParam(), wrong, signed_message));
}

TEST_P(UsmAuth, SignedMessageSurvivesWireRoundTrip) {
  const auto engine_id = snmp::EngineId::make_netsnmp(0xabcdef);
  const auto key = snmp::derive_localized_key(GetParam(), "pw", engine_id);
  const auto signed_message =
      snmp::authenticate(GetParam(), key, make_management_request(engine_id));
  const auto decoded = snmp::V3Message::decode(signed_message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(snmp::verify_authentication(GetParam(), key, decoded.value()));
}

INSTANTIATE_TEST_SUITE_P(Protocols, UsmAuth,
                         ::testing::Values(snmp::AuthProtocol::kHmacMd5_96,
                                           snmp::AuthProtocol::kHmacSha1_96));

TEST(Usm, BruteForceRecoversWeakPassword) {
  // The attack of paper §8 / Thomas 2021: engine ID (leaked via discovery)
  // + one captured authenticated packet = offline dictionary attack.
  const auto engine_id = snmp::EngineId::make_mac(
      9, net::MacAddress::from_oui(0x00000c, 0x31db80));
  const auto key = snmp::derive_localized_key(snmp::AuthProtocol::kHmacSha1_96,
                                              "winter2021", engine_id);
  const auto captured = snmp::authenticate(
      snmp::AuthProtocol::kHmacSha1_96, key, make_management_request(engine_id));

  const std::vector<std::string> dictionary = {
      "admin", "password", "letmein", "winter2021", "cisco123"};
  const auto recovered = snmp::brute_force_password(
      snmp::AuthProtocol::kHmacSha1_96, captured, dictionary);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, "winter2021");

  const std::vector<std::string> wrong = {"admin", "password"};
  EXPECT_FALSE(snmp::brute_force_password(snmp::AuthProtocol::kHmacSha1_96,
                                          captured, wrong)
                   .has_value());
}

TEST(Usm, ProtocolNames) {
  EXPECT_EQ(snmp::to_string(snmp::AuthProtocol::kHmacMd5_96), "HMAC-MD5-96");
  EXPECT_EQ(snmp::to_string(snmp::AuthProtocol::kHmacSha1_96), "HMAC-SHA1-96");
}

}  // namespace
}  // namespace snmpv3fp
