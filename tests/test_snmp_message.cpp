#include <gtest/gtest.h>

#include "net/registry.hpp"
#include "snmp/message.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::snmp {
namespace {

TEST(DiscoveryRequest, MatchesPaperWireSize) {
  // With two-byte msg/request IDs the probe is exactly 60 bytes, i.e.
  // 88 bytes on the IPv4 wire and 108 on IPv6 (paper §4.1.1).
  const auto wire = make_discovery_request(0x4a69, 0x37f0).encode();
  EXPECT_EQ(wire.size(), 60u);
}

TEST(DiscoveryRequest, FieldsMatchPaperFigure2) {
  const auto message = make_discovery_request(1000, 2000);
  EXPECT_TRUE(message.usm.authoritative_engine_id.empty());
  EXPECT_EQ(message.usm.engine_boots, 0u);
  EXPECT_EQ(message.usm.engine_time, 0u);
  EXPECT_TRUE(message.usm.user_name.empty());
  EXPECT_TRUE(message.usm.authentication_parameters.empty());
  EXPECT_TRUE(message.usm.privacy_parameters.empty());
  EXPECT_EQ(message.header.msg_flags, kFlagReportable);  // noAuthNoPriv
  EXPECT_EQ(message.header.security_model, kSecurityModelUsm);
  EXPECT_EQ(message.scoped_pdu.pdu.type, PduType::kGetRequest);
  EXPECT_TRUE(message.scoped_pdu.pdu.bindings.empty());
}

TEST(DiscoveryRequest, EncodeDecodeRoundTrip) {
  const auto original = make_discovery_request(4242, 31337);
  const auto decoded = V3Message::decode(original.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().header.msg_id, 4242);
  EXPECT_EQ(decoded.value().scoped_pdu.pdu.request_id, 31337);
  EXPECT_TRUE(decoded.value().usm.authoritative_engine_id.empty());
}

TEST(DiscoveryReport, RoundTripCarriesEngineFields) {
  const auto request = make_discovery_request(77, 88);
  const auto engine_id = EngineId::make_mac(
      net::kPenBrocade, net::MacAddress::from_oui(0x748ef8, 0x31db80));
  const auto report =
      make_discovery_report(request, engine_id, 148, 10043812, 55);
  const auto decoded = V3Message::decode(report.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error();

  const auto& usm = decoded.value().usm;
  EXPECT_EQ(usm.authoritative_engine_id, engine_id);
  EXPECT_EQ(usm.engine_boots, 148u);   // paper Figure 3 values
  EXPECT_EQ(usm.engine_time, 10043812u);
  EXPECT_EQ(decoded.value().header.msg_id, 77);
  EXPECT_EQ(decoded.value().scoped_pdu.pdu.type, PduType::kReport);
  ASSERT_EQ(decoded.value().scoped_pdu.pdu.bindings.size(), 1u);
  EXPECT_EQ(decoded.value().scoped_pdu.pdu.bindings[0].oid,
            kOidUsmStatsUnknownEngineIds);
  const auto* counter = std::get_if<std::uint64_t>(
      &decoded.value().scoped_pdu.pdu.bindings[0].value.data);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(*counter, 55u);
}

TEST(DiscoveryReport, ResponseSizeNearPaperAverage) {
  // Paper: average response 130 bytes on the IPv4 wire = ~102 B payload.
  const auto request = make_discovery_request(1234, 4321);
  const auto engine_id = EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x123456));
  const auto wire =
      make_discovery_report(request, engine_id, 148, 10043812, 55).encode();
  EXPECT_GE(wire.size(), 85u);
  EXPECT_LE(wire.size(), 120u);
}

TEST(V3Message, AllVarValueKindsRoundTrip) {
  V3Message message = make_discovery_request(300, 301);
  message.scoped_pdu.pdu.type = PduType::kResponse;
  message.scoped_pdu.pdu.bindings = {
      {kOidSysDescr, VarValue::string("hello")},
      {kOidSysUpTime, VarValue::timeticks(123456)},
      {{1, 3, 6, 1, 2, 1, 2, 1, 0}, VarValue::integer(-42)},
      {{1, 3, 6, 1, 2, 1, 2, 2, 0}, VarValue::counter32(0xffffffffu)},
      {{1, 3, 6, 1, 2, 1, 2, 3, 0}, VarValue::null()},
      {{1, 3, 6, 1, 2, 1, 2, 4, 0}, VarValue{.data = asn1::Oid{1, 3, 6, 1}}},
  };
  const auto decoded = V3Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  const auto& bindings = decoded.value().scoped_pdu.pdu.bindings;
  ASSERT_EQ(bindings.size(), 6u);
  EXPECT_EQ(bindings[0].value.as_string().value_or(""), "hello");
  EXPECT_EQ(std::get<std::uint64_t>(bindings[1].value.data), 123456u);
  EXPECT_EQ(bindings[1].value.app_tag, asn1::kTagTimeTicks);
  EXPECT_EQ(std::get<std::int64_t>(bindings[2].value.data), -42);
  EXPECT_EQ(std::get<std::uint64_t>(bindings[3].value.data), 0xffffffffu);
  EXPECT_TRUE(bindings[4].value.is_null());
  EXPECT_EQ(std::get<asn1::Oid>(bindings[5].value.data),
            (asn1::Oid{1, 3, 6, 1}));
}

TEST(V3Message, RejectsNonV3) {
  V2cMessage v2;
  v2.community = "public";
  v2.pdu.type = PduType::kGetRequest;
  EXPECT_FALSE(V3Message::decode(v2.encode()).ok());
}

TEST(V3Message, RejectsEncryptedScopedPdu) {
  auto message = make_discovery_request(1, 2);
  message.header.msg_flags = kFlagPriv | kFlagAuth;
  const auto wire = message.encode();
  EXPECT_FALSE(V3Message::decode(wire).ok());
}

TEST(V3Message, RejectsNegativeBootsOnWire) {
  // Hand-craft USM params with boots = -1.
  using namespace asn1;
  SequenceBuilder usm;
  usm.add(encode_octet_string({}));
  usm.add(encode_integer(-1));
  usm.add(encode_integer(0));
  usm.add(encode_octet_string({}));
  usm.add(encode_octet_string({}));
  usm.add(encode_octet_string({}));

  SequenceBuilder header;
  header.add(encode_integer(1));
  header.add(encode_integer(65507));
  const std::uint8_t flags = 0x04;
  header.add(encode_octet_string(util::ByteView(&flags, 1)));
  header.add(encode_integer(3));

  SequenceBuilder scoped;
  scoped.add(encode_octet_string({}));
  scoped.add(encode_octet_string({}));
  SequenceBuilder pdu;
  pdu.add(encode_integer(1));
  pdu.add(encode_integer(0));
  pdu.add(encode_integer(0));
  pdu.add(SequenceBuilder{}.finish());
  scoped.add(pdu.finish(context_tag(0)));

  SequenceBuilder message;
  message.add(encode_integer(3));
  message.add(header.finish());
  message.add(encode_octet_string(usm.finish()));
  message.add(scoped.finish());
  EXPECT_FALSE(V3Message::decode(message.finish()).ok());
}

TEST(V3Message, MutationFuzzNeverCrashes) {
  const auto request = make_discovery_request(500, 501);
  const auto engine_id = EngineId::make_netsnmp(0xabcdef);
  const auto valid =
      make_discovery_report(request, engine_id, 3, 1000, 9).encode();
  util::Rng rng(314159);
  for (int round = 0; round < 30000; ++round) {
    util::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(6);
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    (void)V3Message::decode(mutated);  // must not crash / over-read
  }
  SUCCEED();
}

TEST(V2cMessage, RoundTrip) {
  V2cMessage message;
  message.community = "pass123";
  message.pdu.type = PduType::kGetRequest;
  message.pdu.request_id = 99;
  message.pdu.bindings = {{kOidSysDescr, VarValue::null()}};
  const auto decoded = V2cMessage::decode(message.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().community, "pass123");
  EXPECT_EQ(decoded.value().pdu.request_id, 99);
  ASSERT_EQ(decoded.value().pdu.bindings.size(), 1u);
  EXPECT_EQ(decoded.value().pdu.bindings[0].oid, kOidSysDescr);
}

TEST(PeekVersion, DistinguishesVersions) {
  EXPECT_EQ(peek_version(make_discovery_request(1, 2).encode()).value_or(-1),
            3);
  V2cMessage v2;
  v2.community = "public";
  EXPECT_EQ(peek_version(v2.encode()).value_or(-1), 1);
  EXPECT_FALSE(peek_version(util::Bytes{0xde, 0xad}).ok());
}

TEST(PduType, Names) {
  EXPECT_EQ(to_string(PduType::kReport), "report");
  EXPECT_EQ(to_string(PduType::kGetRequest), "get-request");
}

}  // namespace
}  // namespace snmpv3fp::snmp
