# Empty compiler generated dependencies file for snmpv3fp_scan.
# This may be replaced when dependencies are built.
