file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_scan.dir/aliased_prefix.cpp.o"
  "CMakeFiles/snmpv3fp_scan.dir/aliased_prefix.cpp.o.d"
  "CMakeFiles/snmpv3fp_scan.dir/campaign.cpp.o"
  "CMakeFiles/snmpv3fp_scan.dir/campaign.cpp.o.d"
  "CMakeFiles/snmpv3fp_scan.dir/prober.cpp.o"
  "CMakeFiles/snmpv3fp_scan.dir/prober.cpp.o.d"
  "CMakeFiles/snmpv3fp_scan.dir/walker.cpp.o"
  "CMakeFiles/snmpv3fp_scan.dir/walker.cpp.o.d"
  "libsnmpv3fp_scan.a"
  "libsnmpv3fp_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
