file(REMOVE_RECURSE
  "libsnmpv3fp_scan.a"
)
