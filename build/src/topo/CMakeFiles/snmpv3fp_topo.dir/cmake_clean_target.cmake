file(REMOVE_RECURSE
  "libsnmpv3fp_topo.a"
)
