# Empty compiler generated dependencies file for snmpv3fp_topo.
# This may be replaced when dependencies are built.
