file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_topo.dir/datasets.cpp.o"
  "CMakeFiles/snmpv3fp_topo.dir/datasets.cpp.o.d"
  "CMakeFiles/snmpv3fp_topo.dir/generator.cpp.o"
  "CMakeFiles/snmpv3fp_topo.dir/generator.cpp.o.d"
  "CMakeFiles/snmpv3fp_topo.dir/vendor.cpp.o"
  "CMakeFiles/snmpv3fp_topo.dir/vendor.cpp.o.d"
  "CMakeFiles/snmpv3fp_topo.dir/world.cpp.o"
  "CMakeFiles/snmpv3fp_topo.dir/world.cpp.o.d"
  "libsnmpv3fp_topo.a"
  "libsnmpv3fp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
