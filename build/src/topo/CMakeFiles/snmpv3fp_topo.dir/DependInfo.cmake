
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/datasets.cpp" "src/topo/CMakeFiles/snmpv3fp_topo.dir/datasets.cpp.o" "gcc" "src/topo/CMakeFiles/snmpv3fp_topo.dir/datasets.cpp.o.d"
  "/root/repo/src/topo/generator.cpp" "src/topo/CMakeFiles/snmpv3fp_topo.dir/generator.cpp.o" "gcc" "src/topo/CMakeFiles/snmpv3fp_topo.dir/generator.cpp.o.d"
  "/root/repo/src/topo/vendor.cpp" "src/topo/CMakeFiles/snmpv3fp_topo.dir/vendor.cpp.o" "gcc" "src/topo/CMakeFiles/snmpv3fp_topo.dir/vendor.cpp.o.d"
  "/root/repo/src/topo/world.cpp" "src/topo/CMakeFiles/snmpv3fp_topo.dir/world.cpp.o" "gcc" "src/topo/CMakeFiles/snmpv3fp_topo.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snmp/CMakeFiles/snmpv3fp_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snmpv3fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/snmpv3fp_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snmpv3fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
