file(REMOVE_RECURSE
  "libsnmpv3fp_util.a"
)
