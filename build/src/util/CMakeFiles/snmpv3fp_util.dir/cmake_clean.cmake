file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_util.dir/aes.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/aes.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/bytes.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/bytes.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/digest.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/digest.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/rng.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/rng.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/stats.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/stats.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/strings.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/strings.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/table.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/table.cpp.o.d"
  "CMakeFiles/snmpv3fp_util.dir/vclock.cpp.o"
  "CMakeFiles/snmpv3fp_util.dir/vclock.cpp.o.d"
  "libsnmpv3fp_util.a"
  "libsnmpv3fp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
