# Empty compiler generated dependencies file for snmpv3fp_util.
# This may be replaced when dependencies are built.
