
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/agent.cpp" "src/sim/CMakeFiles/snmpv3fp_sim.dir/agent.cpp.o" "gcc" "src/sim/CMakeFiles/snmpv3fp_sim.dir/agent.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/snmpv3fp_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/snmpv3fp_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/mib.cpp" "src/sim/CMakeFiles/snmpv3fp_sim.dir/mib.cpp.o" "gcc" "src/sim/CMakeFiles/snmpv3fp_sim.dir/mib.cpp.o.d"
  "/root/repo/src/sim/stack.cpp" "src/sim/CMakeFiles/snmpv3fp_sim.dir/stack.cpp.o" "gcc" "src/sim/CMakeFiles/snmpv3fp_sim.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/snmpv3fp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/snmp/CMakeFiles/snmpv3fp_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/snmpv3fp_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snmpv3fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snmpv3fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
