# Empty compiler generated dependencies file for snmpv3fp_sim.
# This may be replaced when dependencies are built.
