file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_sim.dir/agent.cpp.o"
  "CMakeFiles/snmpv3fp_sim.dir/agent.cpp.o.d"
  "CMakeFiles/snmpv3fp_sim.dir/fabric.cpp.o"
  "CMakeFiles/snmpv3fp_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/snmpv3fp_sim.dir/mib.cpp.o"
  "CMakeFiles/snmpv3fp_sim.dir/mib.cpp.o.d"
  "CMakeFiles/snmpv3fp_sim.dir/stack.cpp.o"
  "CMakeFiles/snmpv3fp_sim.dir/stack.cpp.o.d"
  "libsnmpv3fp_sim.a"
  "libsnmpv3fp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
