file(REMOVE_RECURSE
  "libsnmpv3fp_sim.a"
)
