file(REMOVE_RECURSE
  "libsnmpv3fp_baselines.a"
)
