# Empty dependencies file for snmpv3fp_baselines.
# This may be replaced when dependencies are built.
