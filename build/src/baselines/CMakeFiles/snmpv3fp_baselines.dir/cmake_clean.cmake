file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_baselines.dir/compare.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/compare.cpp.o.d"
  "CMakeFiles/snmpv3fp_baselines.dir/midar.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/midar.cpp.o.d"
  "CMakeFiles/snmpv3fp_baselines.dir/nmap_lite.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/nmap_lite.cpp.o.d"
  "CMakeFiles/snmpv3fp_baselines.dir/router_names.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/router_names.cpp.o.d"
  "CMakeFiles/snmpv3fp_baselines.dir/speedtrap.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/speedtrap.cpp.o.d"
  "CMakeFiles/snmpv3fp_baselines.dir/ttl_fingerprint.cpp.o"
  "CMakeFiles/snmpv3fp_baselines.dir/ttl_fingerprint.cpp.o.d"
  "libsnmpv3fp_baselines.a"
  "libsnmpv3fp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
