# Empty compiler generated dependencies file for snmpv3fp_snmp.
# This may be replaced when dependencies are built.
