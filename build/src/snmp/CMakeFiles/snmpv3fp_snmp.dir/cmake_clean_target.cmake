file(REMOVE_RECURSE
  "libsnmpv3fp_snmp.a"
)
