
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snmp/engine_id.cpp" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/engine_id.cpp.o" "gcc" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/engine_id.cpp.o.d"
  "/root/repo/src/snmp/message.cpp" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/message.cpp.o" "gcc" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/message.cpp.o.d"
  "/root/repo/src/snmp/usm.cpp" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/usm.cpp.o" "gcc" "src/snmp/CMakeFiles/snmpv3fp_snmp.dir/usm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn1/CMakeFiles/snmpv3fp_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snmpv3fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snmpv3fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
