file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_snmp.dir/engine_id.cpp.o"
  "CMakeFiles/snmpv3fp_snmp.dir/engine_id.cpp.o.d"
  "CMakeFiles/snmpv3fp_snmp.dir/message.cpp.o"
  "CMakeFiles/snmpv3fp_snmp.dir/message.cpp.o.d"
  "CMakeFiles/snmpv3fp_snmp.dir/usm.cpp.o"
  "CMakeFiles/snmpv3fp_snmp.dir/usm.cpp.o.d"
  "libsnmpv3fp_snmp.a"
  "libsnmpv3fp_snmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_snmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
