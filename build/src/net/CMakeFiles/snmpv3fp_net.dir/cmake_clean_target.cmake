file(REMOVE_RECURSE
  "libsnmpv3fp_net.a"
)
