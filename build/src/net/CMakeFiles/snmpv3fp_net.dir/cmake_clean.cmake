file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_net.dir/as_table.cpp.o"
  "CMakeFiles/snmpv3fp_net.dir/as_table.cpp.o.d"
  "CMakeFiles/snmpv3fp_net.dir/ip.cpp.o"
  "CMakeFiles/snmpv3fp_net.dir/ip.cpp.o.d"
  "CMakeFiles/snmpv3fp_net.dir/mac.cpp.o"
  "CMakeFiles/snmpv3fp_net.dir/mac.cpp.o.d"
  "CMakeFiles/snmpv3fp_net.dir/registry.cpp.o"
  "CMakeFiles/snmpv3fp_net.dir/registry.cpp.o.d"
  "CMakeFiles/snmpv3fp_net.dir/udp_socket.cpp.o"
  "CMakeFiles/snmpv3fp_net.dir/udp_socket.cpp.o.d"
  "libsnmpv3fp_net.a"
  "libsnmpv3fp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
