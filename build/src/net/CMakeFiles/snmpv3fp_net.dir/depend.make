# Empty dependencies file for snmpv3fp_net.
# This may be replaced when dependencies are built.
