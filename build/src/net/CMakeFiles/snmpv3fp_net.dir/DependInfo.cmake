
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_table.cpp" "src/net/CMakeFiles/snmpv3fp_net.dir/as_table.cpp.o" "gcc" "src/net/CMakeFiles/snmpv3fp_net.dir/as_table.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/snmpv3fp_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/snmpv3fp_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/snmpv3fp_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/snmpv3fp_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/registry.cpp" "src/net/CMakeFiles/snmpv3fp_net.dir/registry.cpp.o" "gcc" "src/net/CMakeFiles/snmpv3fp_net.dir/registry.cpp.o.d"
  "/root/repo/src/net/udp_socket.cpp" "src/net/CMakeFiles/snmpv3fp_net.dir/udp_socket.cpp.o" "gcc" "src/net/CMakeFiles/snmpv3fp_net.dir/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snmpv3fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
