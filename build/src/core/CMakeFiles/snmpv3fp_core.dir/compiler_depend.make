# Empty compiler generated dependencies file for snmpv3fp_core.
# This may be replaced when dependencies are built.
