file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_core.dir/alias.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/alias.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/analytics.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/analytics.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/anomaly.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/filters.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/filters.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/fingerprint.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/join.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/join.cpp.o.d"
  "CMakeFiles/snmpv3fp_core.dir/pipeline.cpp.o"
  "CMakeFiles/snmpv3fp_core.dir/pipeline.cpp.o.d"
  "libsnmpv3fp_core.a"
  "libsnmpv3fp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
