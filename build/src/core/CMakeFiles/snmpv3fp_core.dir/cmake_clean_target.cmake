file(REMOVE_RECURSE
  "libsnmpv3fp_core.a"
)
