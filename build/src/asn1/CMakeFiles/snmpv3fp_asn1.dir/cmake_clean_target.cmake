file(REMOVE_RECURSE
  "libsnmpv3fp_asn1.a"
)
