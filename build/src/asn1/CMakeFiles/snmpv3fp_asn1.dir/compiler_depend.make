# Empty compiler generated dependencies file for snmpv3fp_asn1.
# This may be replaced when dependencies are built.
