file(REMOVE_RECURSE
  "CMakeFiles/snmpv3fp_asn1.dir/ber.cpp.o"
  "CMakeFiles/snmpv3fp_asn1.dir/ber.cpp.o.d"
  "libsnmpv3fp_asn1.a"
  "libsnmpv3fp_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmpv3fp_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
