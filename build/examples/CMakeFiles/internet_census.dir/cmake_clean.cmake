file(REMOVE_RECURSE
  "CMakeFiles/internet_census.dir/internet_census.cpp.o"
  "CMakeFiles/internet_census.dir/internet_census.cpp.o.d"
  "internet_census"
  "internet_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
