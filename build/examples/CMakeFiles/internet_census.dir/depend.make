# Empty dependencies file for internet_census.
# This may be replaced when dependencies are built.
