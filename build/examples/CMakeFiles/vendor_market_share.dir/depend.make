# Empty dependencies file for vendor_market_share.
# This may be replaced when dependencies are built.
