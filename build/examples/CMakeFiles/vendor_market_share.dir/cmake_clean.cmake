file(REMOVE_RECURSE
  "CMakeFiles/vendor_market_share.dir/vendor_market_share.cpp.o"
  "CMakeFiles/vendor_market_share.dir/vendor_market_share.cpp.o.d"
  "vendor_market_share"
  "vendor_market_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_market_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
