file(REMOVE_RECURSE
  "CMakeFiles/lab_validation.dir/lab_validation.cpp.o"
  "CMakeFiles/lab_validation.dir/lab_validation.cpp.o.d"
  "lab_validation"
  "lab_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
