# Empty dependencies file for lab_validation.
# This may be replaced when dependencies are built.
