# Empty compiler generated dependencies file for census_report.
# This may be replaced when dependencies are built.
