file(REMOVE_RECURSE
  "CMakeFiles/census_report.dir/census_report.cpp.o"
  "CMakeFiles/census_report.dir/census_report.cpp.o.d"
  "census_report"
  "census_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
