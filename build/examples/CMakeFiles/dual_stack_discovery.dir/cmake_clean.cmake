file(REMOVE_RECURSE
  "CMakeFiles/dual_stack_discovery.dir/dual_stack_discovery.cpp.o"
  "CMakeFiles/dual_stack_discovery.dir/dual_stack_discovery.cpp.o.d"
  "dual_stack_discovery"
  "dual_stack_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_stack_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
