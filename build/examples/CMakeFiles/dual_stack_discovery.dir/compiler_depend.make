# Empty compiler generated dependencies file for dual_stack_discovery.
# This may be replaced when dependencies are built.
