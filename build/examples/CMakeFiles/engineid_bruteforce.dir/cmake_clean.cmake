file(REMOVE_RECURSE
  "CMakeFiles/engineid_bruteforce.dir/engineid_bruteforce.cpp.o"
  "CMakeFiles/engineid_bruteforce.dir/engineid_bruteforce.cpp.o.d"
  "engineid_bruteforce"
  "engineid_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engineid_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
