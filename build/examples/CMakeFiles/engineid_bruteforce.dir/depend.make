# Empty dependencies file for engineid_bruteforce.
# This may be replaced when dependencies are built.
