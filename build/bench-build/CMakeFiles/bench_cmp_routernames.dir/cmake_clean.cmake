file(REMOVE_RECURSE
  "../bench/bench_cmp_routernames"
  "../bench/bench_cmp_routernames.pdb"
  "CMakeFiles/bench_cmp_routernames.dir/bench_cmp_routernames.cpp.o"
  "CMakeFiles/bench_cmp_routernames.dir/bench_cmp_routernames.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_routernames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
