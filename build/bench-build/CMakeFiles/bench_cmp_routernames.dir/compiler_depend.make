# Empty compiler generated dependencies file for bench_cmp_routernames.
# This may be replaced when dependencies are built.
