file(REMOVE_RECURSE
  "../bench/bench_fig09_aliasset_sizes"
  "../bench/bench_fig09_aliasset_sizes.pdb"
  "CMakeFiles/bench_fig09_aliasset_sizes.dir/bench_fig09_aliasset_sizes.cpp.o"
  "CMakeFiles/bench_fig09_aliasset_sizes.dir/bench_fig09_aliasset_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_aliasset_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
