# Empty compiler generated dependencies file for bench_fig14_vendors_per_as.
# This may be replaced when dependencies are built.
