# Empty dependencies file for bench_cmp_nmap.
# This may be replaced when dependencies are built.
