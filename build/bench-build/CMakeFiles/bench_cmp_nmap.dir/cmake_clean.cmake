file(REMOVE_RECURSE
  "../bench/bench_cmp_nmap"
  "../bench/bench_cmp_nmap.pdb"
  "CMakeFiles/bench_cmp_nmap.dir/bench_cmp_nmap.cpp.o"
  "CMakeFiles/bench_cmp_nmap.dir/bench_cmp_nmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_nmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
