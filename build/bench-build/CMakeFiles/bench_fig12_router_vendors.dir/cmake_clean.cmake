file(REMOVE_RECURSE
  "../bench/bench_fig12_router_vendors"
  "../bench/bench_fig12_router_vendors.pdb"
  "CMakeFiles/bench_fig12_router_vendors.dir/bench_fig12_router_vendors.cpp.o"
  "CMakeFiles/bench_fig12_router_vendors.dir/bench_fig12_router_vendors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_router_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
