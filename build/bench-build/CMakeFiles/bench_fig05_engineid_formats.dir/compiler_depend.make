# Empty compiler generated dependencies file for bench_fig05_engineid_formats.
# This may be replaced when dependencies are built.
