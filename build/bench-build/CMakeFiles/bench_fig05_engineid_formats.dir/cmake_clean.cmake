file(REMOVE_RECURSE
  "../bench/bench_fig05_engineid_formats"
  "../bench/bench_fig05_engineid_formats.pdb"
  "CMakeFiles/bench_fig05_engineid_formats.dir/bench_fig05_engineid_formats.cpp.o"
  "CMakeFiles/bench_fig05_engineid_formats.dir/bench_fig05_engineid_formats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_engineid_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
