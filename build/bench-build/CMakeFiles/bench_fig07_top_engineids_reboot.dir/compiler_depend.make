# Empty compiler generated dependencies file for bench_fig07_top_engineids_reboot.
# This may be replaced when dependencies are built.
