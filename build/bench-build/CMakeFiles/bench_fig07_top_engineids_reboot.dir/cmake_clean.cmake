file(REMOVE_RECURSE
  "../bench/bench_fig07_top_engineids_reboot"
  "../bench/bench_fig07_top_engineids_reboot.pdb"
  "CMakeFiles/bench_fig07_top_engineids_reboot.dir/bench_fig07_top_engineids_reboot.cpp.o"
  "CMakeFiles/bench_fig07_top_engineids_reboot.dir/bench_fig07_top_engineids_reboot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_top_engineids_reboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
