file(REMOVE_RECURSE
  "../bench/bench_sec9_nat_lb"
  "../bench/bench_sec9_nat_lb.pdb"
  "CMakeFiles/bench_sec9_nat_lb.dir/bench_sec9_nat_lb.cpp.o"
  "CMakeFiles/bench_sec9_nat_lb.dir/bench_sec9_nat_lb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_nat_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
