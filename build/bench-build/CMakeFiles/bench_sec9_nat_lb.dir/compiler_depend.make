# Empty compiler generated dependencies file for bench_sec9_nat_lb.
# This may be replaced when dependencies are built.
