# Empty dependencies file for bench_fig15_region_heatmap.
# This may be replaced when dependencies are built.
