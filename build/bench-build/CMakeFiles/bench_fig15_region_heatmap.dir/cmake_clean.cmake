file(REMOVE_RECURSE
  "../bench/bench_fig15_region_heatmap"
  "../bench/bench_fig15_region_heatmap.pdb"
  "CMakeFiles/bench_fig15_region_heatmap.dir/bench_fig15_region_heatmap.cpp.o"
  "CMakeFiles/bench_fig15_region_heatmap.dir/bench_fig15_region_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_region_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
