# Empty dependencies file for bench_fig08_reboot_consistency.
# This may be replaced when dependencies are built.
