file(REMOVE_RECURSE
  "../bench/bench_fig08_reboot_consistency"
  "../bench/bench_fig08_reboot_consistency.pdb"
  "CMakeFiles/bench_fig08_reboot_consistency.dir/bench_fig08_reboot_consistency.cpp.o"
  "CMakeFiles/bench_fig08_reboot_consistency.dir/bench_fig08_reboot_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_reboot_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
