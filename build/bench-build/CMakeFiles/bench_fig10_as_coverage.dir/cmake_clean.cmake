file(REMOVE_RECURSE
  "../bench/bench_fig10_as_coverage"
  "../bench/bench_fig10_as_coverage.pdb"
  "CMakeFiles/bench_fig10_as_coverage.dir/bench_fig10_as_coverage.cpp.o"
  "CMakeFiles/bench_fig10_as_coverage.dir/bench_fig10_as_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_as_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
