# Empty dependencies file for bench_fig10_as_coverage.
# This may be replaced when dependencies are built.
