# Empty dependencies file for bench_fig20_routers_per_as.
# This may be replaced when dependencies are built.
