# Empty dependencies file for bench_sec8_amplification.
# This may be replaced when dependencies are built.
