file(REMOVE_RECURSE
  "../bench/bench_sec8_amplification"
  "../bench/bench_sec8_amplification.pdb"
  "CMakeFiles/bench_sec8_amplification.dir/bench_sec8_amplification.cpp.o"
  "CMakeFiles/bench_sec8_amplification.dir/bench_sec8_amplification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
