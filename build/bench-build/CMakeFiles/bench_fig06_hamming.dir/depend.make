# Empty dependencies file for bench_fig06_hamming.
# This may be replaced when dependencies are built.
