file(REMOVE_RECURSE
  "../bench/bench_fig06_hamming"
  "../bench/bench_fig06_hamming.pdb"
  "CMakeFiles/bench_fig06_hamming.dir/bench_fig06_hamming.cpp.o"
  "CMakeFiles/bench_fig06_hamming.dir/bench_fig06_hamming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
