file(REMOVE_RECURSE
  "../bench-lib/libbench_common.a"
)
