# Empty dependencies file for bench_fig17_dominance.
# This may be replaced when dependencies are built.
