file(REMOVE_RECURSE
  "../bench/bench_fig16_top10_as"
  "../bench/bench_fig16_top10_as.pdb"
  "CMakeFiles/bench_fig16_top10_as.dir/bench_fig16_top10_as.cpp.o"
  "CMakeFiles/bench_fig16_top10_as.dir/bench_fig16_top10_as.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_top10_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
