# Empty compiler generated dependencies file for bench_fig16_top10_as.
# This may be replaced when dependencies are built.
