# Empty compiler generated dependencies file for bench_fig18_dominance_region.
# This may be replaced when dependencies are built.
