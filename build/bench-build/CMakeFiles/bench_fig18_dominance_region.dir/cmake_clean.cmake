file(REMOVE_RECURSE
  "../bench/bench_fig18_dominance_region"
  "../bench/bench_fig18_dominance_region.pdb"
  "CMakeFiles/bench_fig18_dominance_region.dir/bench_fig18_dominance_region.cpp.o"
  "CMakeFiles/bench_fig18_dominance_region.dir/bench_fig18_dominance_region.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_dominance_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
