# Empty dependencies file for bench_table2_router_datasets.
# This may be replaced when dependencies are built.
