# Empty dependencies file for bench_fig19_tuple_uniqueness.
# This may be replaced when dependencies are built.
