file(REMOVE_RECURSE
  "../bench/bench_fig19_tuple_uniqueness"
  "../bench/bench_fig19_tuple_uniqueness.pdb"
  "CMakeFiles/bench_fig19_tuple_uniqueness.dir/bench_fig19_tuple_uniqueness.cpp.o"
  "CMakeFiles/bench_fig19_tuple_uniqueness.dir/bench_fig19_tuple_uniqueness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_tuple_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
