file(REMOVE_RECURSE
  "../bench/bench_table1_scan_overview"
  "../bench/bench_table1_scan_overview.pdb"
  "CMakeFiles/bench_table1_scan_overview.dir/bench_table1_scan_overview.cpp.o"
  "CMakeFiles/bench_table1_scan_overview.dir/bench_table1_scan_overview.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scan_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
