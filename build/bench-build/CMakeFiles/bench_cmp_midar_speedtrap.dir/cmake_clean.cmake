file(REMOVE_RECURSE
  "../bench/bench_cmp_midar_speedtrap"
  "../bench/bench_cmp_midar_speedtrap.pdb"
  "CMakeFiles/bench_cmp_midar_speedtrap.dir/bench_cmp_midar_speedtrap.cpp.o"
  "CMakeFiles/bench_cmp_midar_speedtrap.dir/bench_cmp_midar_speedtrap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_midar_speedtrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
