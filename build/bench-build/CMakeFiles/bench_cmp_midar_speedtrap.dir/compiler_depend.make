# Empty compiler generated dependencies file for bench_cmp_midar_speedtrap.
# This may be replaced when dependencies are built.
