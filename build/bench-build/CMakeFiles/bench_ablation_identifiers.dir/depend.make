# Empty dependencies file for bench_ablation_identifiers.
# This may be replaced when dependencies are built.
