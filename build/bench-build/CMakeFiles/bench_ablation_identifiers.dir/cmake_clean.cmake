file(REMOVE_RECURSE
  "../bench/bench_ablation_identifiers"
  "../bench/bench_ablation_identifiers.pdb"
  "CMakeFiles/bench_ablation_identifiers.dir/bench_ablation_identifiers.cpp.o"
  "CMakeFiles/bench_ablation_identifiers.dir/bench_ablation_identifiers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_identifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
