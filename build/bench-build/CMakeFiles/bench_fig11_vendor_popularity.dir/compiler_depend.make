# Empty compiler generated dependencies file for bench_fig11_vendor_popularity.
# This may be replaced when dependencies are built.
