file(REMOVE_RECURSE
  "../bench/bench_fig11_vendor_popularity"
  "../bench/bench_fig11_vendor_popularity.pdb"
  "CMakeFiles/bench_fig11_vendor_popularity.dir/bench_fig11_vendor_popularity.cpp.o"
  "CMakeFiles/bench_fig11_vendor_popularity.dir/bench_fig11_vendor_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vendor_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
