file(REMOVE_RECURSE
  "../bench/bench_fig13_uptime"
  "../bench/bench_fig13_uptime.pdb"
  "CMakeFiles/bench_fig13_uptime.dir/bench_fig13_uptime.cpp.o"
  "CMakeFiles/bench_fig13_uptime.dir/bench_fig13_uptime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_uptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
