# Empty dependencies file for bench_fig13_uptime.
# This may be replaced when dependencies are built.
