# Empty compiler generated dependencies file for bench_table3_alias_variants.
# This may be replaced when dependencies are built.
