# Empty dependencies file for bench_fig04_ips_per_engineid.
# This may be replaced when dependencies are built.
