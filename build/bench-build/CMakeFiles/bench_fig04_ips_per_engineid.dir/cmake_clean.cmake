file(REMOVE_RECURSE
  "../bench/bench_fig04_ips_per_engineid"
  "../bench/bench_fig04_ips_per_engineid.pdb"
  "CMakeFiles/bench_fig04_ips_per_engineid.dir/bench_fig04_ips_per_engineid.cpp.o"
  "CMakeFiles/bench_fig04_ips_per_engineid.dir/bench_fig04_ips_per_engineid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ips_per_engineid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
