file(REMOVE_RECURSE
  "CMakeFiles/test_aliased_prefix.dir/test_aliased_prefix.cpp.o"
  "CMakeFiles/test_aliased_prefix.dir/test_aliased_prefix.cpp.o.d"
  "test_aliased_prefix"
  "test_aliased_prefix.pdb"
  "test_aliased_prefix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aliased_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
