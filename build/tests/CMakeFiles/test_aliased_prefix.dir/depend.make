# Empty dependencies file for test_aliased_prefix.
# This may be replaced when dependencies are built.
