file(REMOVE_RECURSE
  "CMakeFiles/test_mib_walk.dir/test_mib_walk.cpp.o"
  "CMakeFiles/test_mib_walk.dir/test_mib_walk.cpp.o.d"
  "test_mib_walk"
  "test_mib_walk.pdb"
  "test_mib_walk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mib_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
