# Empty dependencies file for test_mib_walk.
# This may be replaced when dependencies are built.
