file(REMOVE_RECURSE
  "CMakeFiles/test_snmp_engine_id.dir/test_snmp_engine_id.cpp.o"
  "CMakeFiles/test_snmp_engine_id.dir/test_snmp_engine_id.cpp.o.d"
  "test_snmp_engine_id"
  "test_snmp_engine_id.pdb"
  "test_snmp_engine_id[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snmp_engine_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
