# Empty dependencies file for test_snmp_engine_id.
# This may be replaced when dependencies are built.
