file(REMOVE_RECURSE
  "CMakeFiles/test_snmp_message.dir/test_snmp_message.cpp.o"
  "CMakeFiles/test_snmp_message.dir/test_snmp_message.cpp.o.d"
  "test_snmp_message"
  "test_snmp_message.pdb"
  "test_snmp_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snmp_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
