# Empty dependencies file for test_snmp_message.
# This may be replaced when dependencies are built.
