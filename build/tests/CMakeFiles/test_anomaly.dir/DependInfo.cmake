
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anomaly.cpp" "tests/CMakeFiles/test_anomaly.dir/test_anomaly.cpp.o" "gcc" "tests/CMakeFiles/test_anomaly.dir/test_anomaly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snmpv3fp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/snmpv3fp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/snmpv3fp_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snmpv3fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/snmpv3fp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/snmp/CMakeFiles/snmpv3fp_snmp.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/snmpv3fp_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snmpv3fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snmpv3fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
