# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_asn1[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_snmp_engine_id[1]_include.cmake")
include("/root/repo/build/tests/test_snmp_message[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_filters[1]_include.cmake")
include("/root/repo/build/tests/test_alias[1]_include.cmake")
include("/root/repo/build/tests/test_fingerprint[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_scan[1]_include.cmake")
include("/root/repo/build/tests/test_analytics[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_usm[1]_include.cmake")
include("/root/repo/build/tests/test_mib_walk[1]_include.cmake")
include("/root/repo/build/tests/test_ground_truth[1]_include.cmake")
include("/root/repo/build/tests/test_anomaly[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_aliased_prefix[1]_include.cmake")
include("/root/repo/build/tests/test_privacy[1]_include.cmake")
