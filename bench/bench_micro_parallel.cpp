// Parallel-engine scaling bench: times the heavy pipeline stages — the
// sharded two-scan campaign, the join, the filter funnel in both its row
// (legacy) and columnar executions, and alias resolution — across a
// 1/2/4/8 thread sweep, and reports per-stage speedup, scaling efficiency
// (speedup / threads) and record throughput. Results go to stdout and,
// machine-readable, to BENCH_parallel.json as
//   {meta: {...}, rows: [{stage, threads, wall_ms, speedup, efficiency,
//                         records, krecords_per_s}, ...]}.
//
// All stages are bit-identical across thread counts and across the
// columnar knob (tests/test_parallel.cpp, tests/test_columnar.cpp), so the
// timings compare identical work.
//
// Usage: bench_micro_parallel [--quick] [--gate] [--baseline=<path>]
// Exits non-zero when:
//   - the emitted JSON fails its own schema check (artifact drift), or,
//     under --gate (scripts/check.sh runs it so):
//   - the columnar filter's single-thread wall time is not >= 4x faster
//     than the recorded pre-columnar row filter's (the "filter" stage at
//     one thread in the --baseline artifact, default
//     bench/baselines/BENCH_parallel_before.json),
//   - the campaign's 8-thread speedup falls below 3x — enforced only when
//     the machine has >= 8 hardware threads (printed as SKIPPED
//     otherwise: a scaling claim measured on fewer cores is fiction),
//   - any stage's speedup at any swept thread count regresses below 70%
//     of the recorded baseline artifact's.
// Baseline-derived gates compare wall times against a full-world artifact,
// so they are skipped (with a note) under --quick and when the baseline
// file is absent.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "common.hpp"
#include "obs/json.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

constexpr double kFilterColumnarMinSpeedup = 4.0;
constexpr double kScanMinSpeedupAt8 = 3.0;
constexpr double kBaselineRegressionMargin = 0.7;

scan::CampaignOptions campaign_options(std::size_t threads) {
  scan::CampaignOptions options;
  options.family = net::Family::kIpv4;
  options.rate_pps = 5000.0;
  options.seed = 20210416;
  options.parallel.threads = threads;
  return options;
}

// Fails closed on drift: scripts/check.sh relies on this exit code.
bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("build_flags") || !meta->find("hardware_threads"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().empty()) return false;
  std::set<std::string> stages;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    for (const char* key : {"stage", "threads", "wall_ms", "speedup",
                            "efficiency", "records", "krecords_per_s"})
      if (!row.find(key)) return false;
    stages.insert(std::string(row.find("stage")->as_string()));
  }
  // The five stages the scaling table reads must all be present.
  for (const char* stage :
       {"scan_campaign", "join", "filter", "filter_columnar", "alias"})
    if (!stages.count(stage)) return false;
  return true;
}

struct Sample {
  std::string stage;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 0.0;
};

// Reads {stage, threads, speedup} rows out of a committed baseline
// artifact (a previous BENCH_parallel.json, possibly the pre-columnar
// schema without the efficiency fields).
std::vector<Sample> load_baseline(const std::string& path) {
  std::ifstream file(path);
  if (!file) return {};
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto parsed = obs::JsonValue::parse(buffer.str());
  if (!parsed) return {};
  const auto* rows = parsed->is_object() ? parsed->find("rows") : &*parsed;
  if (!rows || !rows->is_array()) return {};
  std::vector<Sample> samples;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) continue;
    const auto* stage = row.find("stage");
    const auto* threads = row.find("threads");
    const auto* wall = row.find("wall_ms");
    const auto* speedup = row.find("speedup");
    if (!stage || !threads || !wall || !speedup) continue;
    Sample sample;
    sample.stage = std::string(stage->as_string());
    sample.threads = static_cast<std::size_t>(threads->as_number());
    sample.wall_ms = wall->as_number();
    sample.speedup = speedup->as_number();
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace
}  // namespace snmpv3fp

int main(int argc, char** argv) {
  using namespace snmpv3fp;
  bool quick = false;
  bool gate = false;
  std::string baseline_path = "bench/baselines/BENCH_parallel_before.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strncmp(argv[i], "--baseline=", 11) == 0)
      baseline_path = argv[i] + 11;
  }

  const std::size_t hardware_threads = std::thread::hardware_concurrency();
  benchx::print_header("micro_parallel",
                       "stage wall time vs thread count (identical outputs)");
  std::printf("  hardware threads: %zu\n\n", hardware_threads);

  const int repeats = quick ? 1 : 3;
  const auto base_world = topo::generate_world(
      quick ? topo::WorldConfig::tiny() : topo::WorldConfig::full_internet());

  // Fixed inputs for the analysis stages, produced once; the campaign is
  // deterministic in `threads`, so any thread count yields the same scans.
  topo::World campaign_world = base_world;
  const auto campaign =
      scan::run_two_scan_campaign(campaign_world, campaign_options(1));
  const auto joined = core::join_scans(campaign.scan1, campaign.scan2);
  const core::FilterPipeline pipeline;
  std::vector<core::JoinedRecord> filtered;
  pipeline.apply_columnar(joined, filtered);

  struct Stage {
    const char* name;
    std::size_t records;
    std::function<void(util::ParallelOptions)> run;
  };
  const std::vector<Stage> stages = {
      {"scan_campaign",
       campaign.scan1.targets_probed + campaign.scan2.targets_probed,
       [&](util::ParallelOptions parallel) {
         topo::World world = base_world;  // campaign mutates addresses
         auto options = campaign_options(parallel.threads);
         scan::run_two_scan_campaign(world, options);
       }},
      {"join", joined.size(),
       [&](util::ParallelOptions parallel) {
         core::join_scans(campaign.scan1, campaign.scan2, nullptr, parallel);
       }},
      {"filter", joined.size(),
       [&](util::ParallelOptions parallel) {
         auto records = joined;
         pipeline.apply(records, parallel);
       }},
      {"filter_columnar", joined.size(),
       [&](util::ParallelOptions parallel) {
         std::vector<core::JoinedRecord> survivors;
         pipeline.apply_columnar(joined, survivors, parallel);
       }},
      {"alias", filtered.size(),
       [&](util::ParallelOptions parallel) {
         core::resolve_aliases(filtered, {}, parallel);
       }},
  };
  const std::size_t thread_sweep[] = {1, 2, 4, 8};

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, campaign_options(1).seed,
                             util::default_thread_count(),
                             scan::kDefaultScanShards);
  rows.meta("hardware_threads", static_cast<std::int64_t>(hardware_threads));
  rows.meta("quick", std::int64_t{quick});

  std::vector<Sample> measured;
  std::printf("  %-16s %8s %12s %9s %11s %14s\n", "stage", "threads",
              "wall_ms", "speedup", "efficiency", "krecords/s");
  for (const auto& stage : stages) {
    double sequential_ms = 0.0;
    for (const std::size_t threads : thread_sweep) {
      const double wall_ms = benchx::best_wall_ms(
          repeats, [&] { stage.run({.threads = threads}); });
      if (threads == 1) sequential_ms = wall_ms;
      const double speedup = wall_ms > 0.0 ? sequential_ms / wall_ms : 0.0;
      const double efficiency = speedup / static_cast<double>(threads);
      const double krecords_per_s =
          wall_ms > 0.0 ? static_cast<double>(stage.records) / wall_ms : 0.0;
      std::printf("  %-16s %8zu %12.2f %8.2fx %10.2f %14.1f\n", stage.name,
                  threads, wall_ms, speedup, efficiency, krecords_per_s);
      rows.begin_row()
          .field("stage", stage.name)
          .field("threads", static_cast<std::int64_t>(threads))
          .field("wall_ms", wall_ms)
          .field("speedup", speedup)
          .field("efficiency", efficiency)
          .field("records", static_cast<std::int64_t>(stage.records))
          .field("krecords_per_s", krecords_per_s);
      measured.push_back({stage.name, threads, wall_ms, speedup});
    }
  }

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr,
                 "FAIL: BENCH_parallel.json failed its own schema check\n");
    return 1;
  }
  if (rows.write("BENCH_parallel.json"))
    std::printf("\n  wrote BENCH_parallel.json\n");

  if (!gate) return 0;

  // ---- gates (scripts/check.sh) ------------------------------------------
  const auto find = [&](const char* stage, std::size_t threads) -> Sample* {
    for (auto& sample : measured)
      if (sample.stage == stage && sample.threads == threads) return &sample;
    return nullptr;
  };
  bool ok = true;
  const auto baseline = quick ? std::vector<Sample>{}
                              : load_baseline(baseline_path);
  const auto baseline_note = quick ? "--quick world is not comparable"
                                   : "no baseline artifact";

  // Filter funnel vs the recorded pre-columnar row filter, single thread
  // (the ISSUE 6 acceptance bar: the baseline artifact was measured on
  // this pipeline before the columnar funnel landed, same world and
  // machine class as a full run).
  {
    const Sample* reference = nullptr;
    for (const auto& sample : baseline)
      if (sample.stage == "filter" && sample.threads == 1)
        reference = &sample;
    const Sample* columnar = find("filter_columnar", 1);
    if (reference == nullptr) {
      std::printf("  gate: filter-vs-baseline SKIPPED (%s: %s)\n",
                  baseline_note, baseline_path.c_str());
    } else {
      const double ratio = (columnar && columnar->wall_ms > 0.0)
                               ? reference->wall_ms / columnar->wall_ms
                               : 0.0;
      if (ratio < kFilterColumnarMinSpeedup) {
        std::fprintf(stderr,
                     "FAIL: columnar filter is %.2fx the pre-columnar "
                     "single-thread baseline (gate: >= %.1fx)\n",
                     ratio, kFilterColumnarMinSpeedup);
        ok = false;
      } else {
        std::printf(
            "  gate: columnar filter %.2fx the pre-columnar baseline "
            "(>= %.1fx) ok\n",
            ratio, kFilterColumnarMinSpeedup);
      }
    }
  }

  // Campaign scaling at 8 threads — only meaningful with 8 real cores.
  if (hardware_threads >= 8) {
    const Sample* scan8 = find("scan_campaign", 8);
    if (scan8 == nullptr || scan8->speedup < kScanMinSpeedupAt8) {
      std::fprintf(stderr,
                   "FAIL: scan_campaign speedup at 8 threads is %.2fx "
                   "(gate: >= %.1fx)\n",
                   scan8 ? scan8->speedup : 0.0, kScanMinSpeedupAt8);
      ok = false;
    } else {
      std::printf("  gate: scan_campaign %.2fx at 8 threads (>= %.1fx) ok\n",
                  scan8->speedup, kScanMinSpeedupAt8);
    }
  } else {
    std::printf(
        "  gate: scan_campaign 8-thread scaling SKIPPED (%zu hardware "
        "threads < 8)\n",
        hardware_threads);
  }

  // Scaling regression against the recorded baseline artifact.
  if (baseline.empty()) {
    std::printf("  gate: regression check SKIPPED (%s: %s)\n", baseline_note,
                baseline_path.c_str());
  } else {
    for (const auto& reference : baseline) {
      const Sample* current = find(reference.stage.c_str(), reference.threads);
      if (current == nullptr) continue;  // stage renamed/removed upstream
      if (current->speedup <
          reference.speedup * kBaselineRegressionMargin) {
        std::fprintf(stderr,
                     "FAIL: %s speedup at %zu threads regressed to %.2fx "
                     "(baseline %.2fx, margin %.0f%%)\n",
                     reference.stage.c_str(), reference.threads,
                     current->speedup, reference.speedup,
                     kBaselineRegressionMargin * 100.0);
        ok = false;
      }
    }
    if (ok)
      std::printf("  gate: no scaling regression vs %s\n",
                  baseline_path.c_str());
  }
  return ok ? 0 : 1;
}
