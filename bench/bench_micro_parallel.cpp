// Parallel-engine scaling bench: times the four heavy pipeline stages
// (two-scan campaign, join, filter pipeline, alias resolution) at several
// thread counts and reports the speedup over the sequential (threads=1)
// run. Results go to stdout and, machine-readable, to BENCH_parallel.json
// as [{stage, threads, wall_ms, speedup}, ...].
//
// All stages are bit-identical across thread counts (enforced by
// tests/test_parallel.cpp), so the timings compare identical work.
#include <cstdio>
#include <map>
#include <set>

#include "common.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

constexpr int kRepeats = 3;

std::vector<std::size_t> thread_counts() {
  std::set<std::size_t> counts{1, 2, 4, util::default_thread_count()};
  return {counts.begin(), counts.end()};
}

scan::CampaignOptions campaign_options(std::size_t threads) {
  scan::CampaignOptions options;
  options.family = net::Family::kIpv4;
  options.rate_pps = 5000.0;
  options.seed = 20210416;
  options.parallel.threads = threads;
  return options;
}

}  // namespace
}  // namespace snmpv3fp

int main() {
  using namespace snmpv3fp;
  benchx::print_header("micro_parallel",
                       "stage wall time vs thread count (identical outputs)");
  std::printf("  hardware threads: %zu (SNMPFP_THREADS overrides)\n\n",
              util::default_thread_count());

  const auto base_world =
      topo::generate_world(topo::WorldConfig::full_internet());

  // Fixed inputs for the analysis stages, produced once; the campaign is
  // deterministic in `threads`, so any thread count yields the same scans.
  topo::World campaign_world = base_world;
  const auto campaign =
      scan::run_two_scan_campaign(campaign_world, campaign_options(1));
  const auto joined = core::join_scans(campaign.scan1, campaign.scan2);
  const core::FilterPipeline pipeline;
  auto filtered = joined;
  pipeline.apply(filtered);

  struct Stage {
    const char* name;
    std::function<void(util::ParallelOptions)> run;
  };
  const std::vector<Stage> stages = {
      {"scan_campaign",
       [&](util::ParallelOptions parallel) {
         topo::World world = base_world;  // campaign mutates addresses
         auto options = campaign_options(parallel.threads);
         scan::run_two_scan_campaign(world, options);
       }},
      {"join",
       [&](util::ParallelOptions parallel) {
         core::join_scans(campaign.scan1, campaign.scan2, nullptr, parallel);
       }},
      {"filter",
       [&](util::ParallelOptions parallel) {
         auto records = joined;
         pipeline.apply(records, parallel);
       }},
      {"alias",
       [&](util::ParallelOptions parallel) {
         core::resolve_aliases(filtered, {}, parallel);
       }},
  };

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, campaign_options(1).seed,
                             util::default_thread_count(),
                             scan::kDefaultScanShards);
  std::printf("  %-14s %8s %12s %9s\n", "stage", "threads", "wall_ms",
              "speedup");
  for (const auto& stage : stages) {
    double sequential_ms = 0.0;
    for (const std::size_t threads : thread_counts()) {
      const double wall_ms = benchx::best_wall_ms(
          kRepeats, [&] { stage.run({.threads = threads}); });
      if (threads == 1) sequential_ms = wall_ms;
      const double speedup = wall_ms > 0.0 ? sequential_ms / wall_ms : 0.0;
      std::printf("  %-14s %8zu %12.2f %8.2fx\n", stage.name, threads,
                  wall_ms, speedup);
      rows.begin_row()
          .field("stage", stage.name)
          .field("threads", static_cast<std::int64_t>(threads))
          .field("wall_ms", wall_ms)
          .field("speedup", speedup);
    }
  }

  if (rows.write("BENCH_parallel.json"))
    std::printf("\n  wrote BENCH_parallel.json\n");
  return 0;
}
