// Figure 20 (Appendix C): distribution of identified routers per AS per
// region. Paper: no significant distributional differences across
// continents, but most of the largest networks sit in NA and EU.
#include <map>

#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 20 (Appendix C)", "routers per AS per region");
  const auto& r = benchx::router_pipeline();
  const auto rollups = core::rollup_by_as(r.devices);

  std::map<std::string, util::Ecdf> by_region;
  util::Ecdf all;
  for (const auto& rollup : rollups) {
    by_region[rollup.region].add(static_cast<double>(rollup.routers));
    all.add(static_cast<double>(rollup.routers));
  }

  const std::vector<double> xs = {1, 2, 5, 10, 50, 100, 1000};
  for (auto& [region, ecdf] : by_region) {
    ecdf.finalize();
    benchx::print_ecdf_at(region, ecdf, xs);
  }
  all.finalize();
  benchx::print_ecdf_at("ALL", all, xs);

  std::cout << "\nShape checks:\n";
  // Largest networks concentrated in NA/EU (paper Appendix C).
  std::map<std::string, double> max_by_region;
  for (const auto& rollup : rollups)
    max_by_region[rollup.region] = std::max(
        max_by_region[rollup.region], static_cast<double>(rollup.routers));
  for (const auto& [region, largest] : max_by_region)
    std::printf("  largest AS in %-3s: %.0f routers\n", region.c_str(),
                largest);
  benchx::print_paper_row("AS-to-region mapping coverage", "99.9%", "100%");
  return 0;
}
