// Table 1: overview of the SNMPv3 measurement campaigns — responsive IPs,
// unique engine IDs, and survivors of the filtering pipeline per family —
// plus the §4.4 per-stage drop funnel behind the two "valid" columns and
// the observed RunReport (stage spans, fabric drops, shard progress),
// written machine-readable to BENCH_run_report.json.
#include <fstream>

#include "common.hpp"

using namespace snmpv3fp;

namespace {

void print_funnel(const std::string& label, const core::JoinStats& join,
                  const core::FilterReport& report) {
  std::cout << "\n" << label << " filtering funnel (paper §4.4):\n";
  std::printf("  %-32s %10zu\n", "overlapping responsive IPs", report.input);
  for (std::size_t i = 0; i < core::kFilterStageCount; ++i) {
    std::printf("  - %-30s %10zu\n",
                std::string(core::to_string(static_cast<core::FilterStage>(i)))
                    .c_str(),
                report.dropped[i]);
  }
  std::printf("  %-32s %10zu\n", "= IPs w/ valid ID & time", report.output);
  std::printf("  (responsive in one scan only: %zu + %zu)\n", join.first_only,
              join.second_only);
}

}  // namespace

int main() {
  benchx::print_header("Table 1", "SNMPv3 scan campaign overview");
  const auto& r = benchx::full_pipeline();

  util::TablePrinter table({"Measurement", "#IPs", "#Engine IDs",
                            "#IPs valid engine ID",
                            "#IPs valid engine ID & time"});
  const auto row = [&](const std::string& name, const scan::ScanResult& scan,
                       const core::FilterReport& report) {
    table.add_row({name, util::fmt_count(scan.responsive()),
                   util::fmt_count(scan.unique_engine_ids()),
                   util::fmt_count(report.valid_engine_id_count()),
                   util::fmt_count(report.output)});
  };
  row("IPv4 scan 1", r.v4_campaign.scan1, r.v4_report);
  row("IPv4 scan 2", r.v4_campaign.scan2, r.v4_report);
  row("IPv6 scan 1", r.v6_campaign.scan1, r.v6_report);
  row("IPv6 scan 2", r.v6_campaign.scan2, r.v6_report);
  table.print(std::cout);

  std::cout << "\nPaper (Table 1): IPv4 31.8M/31.5M IPs, 18.8M/18.6M engine "
               "IDs, 27.0M valid, 12.5M valid+time\n"
               "                 IPv6 182k/180k IPs, 68k/67k engine IDs, "
               "152k valid, 140k valid+time\n";

  std::cout << "\nShape checks (ratios, paper -> measured):\n";
  const double v4_survival = static_cast<double>(r.v4_report.output) /
                             static_cast<double>(r.v4_campaign.scan1.responsive());
  benchx::print_paper_row("IPv4 valid+time / responsive", "39%",
                          util::fmt_percent(v4_survival));
  const double v6_survival = static_cast<double>(r.v6_report.output) /
                             static_cast<double>(
                                 std::max<std::size_t>(
                                     r.v6_campaign.scan1.responsive(), 1));
  benchx::print_paper_row("IPv6 valid+time / responsive", "77%",
                          util::fmt_percent(v6_survival));
  const double ids_per_ip =
      static_cast<double>(r.v4_campaign.scan1.unique_engine_ids()) /
      static_cast<double>(r.v4_campaign.scan1.responsive());
  benchx::print_paper_row("IPv4 engine IDs / responsive IPs", "59%",
                          util::fmt_percent(ids_per_ip));

  print_funnel("IPv4", r.v4_join_stats, r.v4_report);
  print_funnel("IPv6", r.v6_join_stats, r.v6_report);

  std::cout << "\nProbe sizes: IPv4 payload " << r.v4_campaign.scan1.probe_bytes
            << " B (+28 B IP/UDP = 88 B on the wire, paper: 88 B); "
            << "IPv6 payload " << r.v6_campaign.scan1.probe_bytes
            << " B (+48 B = 108 B, paper: 108 B)\n";

  const auto& report = benchx::full_run_report();
  std::cout << "\nRun report (observability layer):\n\n" << report.to_table();
  if (std::ofstream("BENCH_run_report.json") << report.to_json())
    std::cout << "wrote BENCH_run_report.json\n";
  return 0;
}
