// Figure 17: vendor dominance per AS — the fraction of an AS's routers
// belonging to its most common vendor, as ECDFs over ASes with
// >= 2/5/10/50/100 routers. Paper: >80% of networks have dominance >= 0.7.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 17", "vendor dominance per AS");
  const auto& r = benchx::router_pipeline();
  const auto rollups = core::rollup_by_as(r.devices);

  const std::vector<double> xs = {0.3, 0.5, 0.7, 0.9, 1.0};
  for (const std::size_t threshold : {2u, 5u, 10u, 50u, 100u}) {
    util::Ecdf ecdf;
    for (const auto& rollup : rollups)
      if (rollup.routers >= threshold) ecdf.add(rollup.vendor_dominance());
    ecdf.finalize();
    if (ecdf.empty()) continue;
    benchx::print_ecdf_at(
        "ASes with " + std::to_string(threshold) + "+ routers: dominance",
        ecdf, xs);
  }

  util::Ecdf two_plus;
  for (const auto& rollup : rollups)
    if (rollup.routers >= 2) two_plus.add(rollup.vendor_dominance());
  two_plus.finalize();
  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("ASes with dominance >= 0.7", ">80%",
                          util::fmt_percent(1.0 -
                                            two_plus.fraction_at_most(0.699)));
  std::cout << "\n(Security reading from the paper: one vendor's "
               "vulnerability typically exposes most of a network's "
               "routers.)\n";
  return 0;
}
