// Figure 4: ECDF of the number of IP addresses per engine ID, per family.
// Paper: >80% of IPv4 engine IDs appear on a single IP, >50% for IPv6;
// heavy tail with some engine IDs on 1000+ IPs.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 4", "number of occurrences per engine ID");
  const auto& r = benchx::full_pipeline();

  const auto v4 = core::ips_per_engine_id(r.v4_joined);
  const auto v6 = core::ips_per_engine_id(r.v6_joined);

  const std::vector<double> xs = {1, 2, 5, 10, 100, 1000};
  benchx::print_ecdf_at("IPv4: IPs per engine ID", v4, xs);
  benchx::print_ecdf_at("IPv6: IPs per engine ID", v6, xs);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("IPv4 engine IDs on a single IP", ">80%",
                          util::fmt_percent(v4.fraction_at_most(1.0)));
  benchx::print_paper_row("IPv6 engine IDs on a single IP", ">50%",
                          util::fmt_percent(v6.fraction_at_most(1.0)));
  benchx::print_paper_row("IPv4 engine IDs on <= 10 IPs", "vast majority",
                          util::fmt_percent(v4.fraction_at_most(10.0)));
  benchx::print_paper_row("max IPs on one IPv4 engine ID", ">1000 (181k bug)",
                          util::fmt_compact(v4.max()));
  return 0;
}
