// Figure 18: vendor dominance per region for ASes with >= 10 routers.
// Paper: two groups — (SA, AS, AF) run less homogeneous networks than
// (OC, NA, EU).
#include <map>

#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 18",
                       "vendor dominance per region (ASes with 10+ routers)");
  const auto& r = benchx::router_pipeline();
  const auto rollups = core::rollup_by_as(r.devices);

  std::map<std::string, util::Ecdf> by_region;
  for (const auto& rollup : rollups) {
    if (rollup.routers < 10) continue;
    by_region[rollup.region].add(rollup.vendor_dominance());
  }

  const std::vector<double> xs = {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  std::map<std::string, double> median;
  for (auto& [region, ecdf] : by_region) {
    ecdf.finalize();
    median[region] = ecdf.median();
    benchx::print_ecdf_at(region, ecdf, xs);
  }

  std::cout << "\nShape checks (median dominance):\n";
  for (const auto& [region, value] : median)
    std::printf("  %-4s median dominance = %.2f\n", region.c_str(), value);
  const auto get = [&](const char* region) {
    const auto it = median.find(region);
    return it == median.end() ? 0.0 : it->second;
  };
  const double group1 = (get("SA") + get("AS") + get("AF")) / 3.0;
  const double group2 = (get("OC") + get("NA") + get("EU")) / 3.0;
  benchx::print_paper_row("(SA,AS,AF) less dominant than (OC,NA,EU)", "yes",
                          group1 < group2 ? "yes" : "NO");
  return 0;
}
