// bench_obs: the live-telemetry layer's cost and artifact contracts
// (ROADMAP "Live campaign telemetry").
//
// Two gates (scripts/check.sh runs `bench_obs --quick --gate`):
//
//  1. Telemetry-off overhead is ~zero. The probe loop carries one
//     obs::ShardTelemetry unconditionally; when nothing is configured
//     every member is a null-check no-op. The bench times that disabled
//     hot path (timeline tick + flight record + status check + histogram
//     observe per simulated probe) and fails if it costs more than
//     kMaxDisabledNsPerOp — or allocates at all.
//
//  2. The emitted JSON artifacts hold their schemas. One tiny campaign
//     runs fully armed; the chrome trace, status.json, flight dump and
//     timeline section must parse through obs::JsonValue with their
//     documented structure, and the armed run's scan output must be
//     bit-identical to the unarmed run's (the execution-only contract,
//     checked here end-to-end because a bench is the cheapest place to
//     prove it outside the test suite).
//
// Usage: bench_obs [--quick] [--gate]
//   --quick  fewer timing iterations (CI)
//   --gate   exit non-zero when a gate fails (always checked; the flag
//            exists for symmetry with bench_micro_parallel)
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "scan/campaign.hpp"
#include "topo/generator.hpp"
#include "util/table.hpp"
#include "util/vclock.hpp"

// ---------------------------------------------------------------------------
// Allocation counting (same idiom as bench_wire): every operator-new path
// ticks one relaxed atomic, so the disabled hot path can prove it never
// touches the heap.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace snmpv3fp;

namespace {

// Generous even for an unoptimized build: the disabled path is a handful
// of null checks, not a budget for real work.
constexpr double kMaxDisabledNsPerOp = 100.0;

std::uint64_t g_sink = 0;
inline void consume(std::uint64_t v) { g_sink = g_sink * 31 + v; }

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Scan-output equality proxy for the execution-only gate: every campaign
// aggregate that would move if telemetry perturbed a single probe.
std::uint64_t campaign_digest(const scan::CampaignPair& pair) {
  std::uint64_t digest = 0;
  for (const auto* scan : {&pair.scan1, &pair.scan2}) {
    digest = digest * 1099511628211ull + scan->responsive();
    digest = digest * 1099511628211ull + scan->targets_probed;
    digest = digest * 1099511628211ull + scan->unique_engine_ids();
    digest = digest * 1099511628211ull +
             static_cast<std::uint64_t>(scan->end_time);
  }
  digest = digest * 1099511628211ull + pair.fabric_stats.datagrams_sent;
  digest = digest * 1099511628211ull + pair.fabric_stats.responses_received;
  return digest;
}

bool has_keys(const obs::JsonValue& object, const char* what,
              std::initializer_list<const char*> keys) {
  if (!object.is_object()) {
    std::fprintf(stderr, "FAIL: %s is not a JSON object\n", what);
    return false;
  }
  for (const char* key : keys) {
    if (object.find(key) == nullptr) {
      std::fprintf(stderr, "FAIL: %s is missing key \"%s\"\n", what, key);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    // --gate is accepted for check.sh symmetry; the gates always apply.
  }

  benchx::print_header("obs", "Live telemetry: overhead + artifact schemas");
  bool ok = true;

  // --- gate 1: the disabled hot path ------------------------------------
  const std::int64_t iterations = quick ? 2'000'000 : 20'000'000;
  obs::ShardTelemetry disabled;  // what every unobserved probe carries
  const auto tick_once = [&](std::int64_t i) {
    const auto now = static_cast<util::VTime>(i);
    disabled.timeline.tick(now, obs::TimelinePoint{});
    disabled.flight.record(obs::FlightEventKind::kNote, now, i);
    if (disabled.status.enabled()) consume(1);
    disabled.rtt_ms.observe(static_cast<double>(i & 0xff));
    consume(static_cast<std::uint64_t>(disabled.timeline.enabled()));
  };
  for (std::int64_t i = 0; i < 1000; ++i) tick_once(i);  // warm up
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  double best_ms = 0.0;
  const int repeats = quick ? 3 : 5;
  for (int r = 0; r < repeats; ++r) {
    benchx::WallTimer timer;
    for (std::int64_t i = 0; i < iterations; ++i) tick_once(i);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  const std::uint64_t disabled_allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  const double disabled_ns =
      best_ms * 1e6 / static_cast<double>(iterations);
  if (disabled_ns > kMaxDisabledNsPerOp) {
    std::fprintf(stderr,
                 "FAIL: disabled telemetry tick costs %.1f ns/op "
                 "(budget %.0f)\n",
                 disabled_ns, kMaxDisabledNsPerOp);
    ok = false;
  }
  if (disabled_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: disabled telemetry tick allocated (%llu allocs over "
                 "%lld ops)\n",
                 static_cast<unsigned long long>(disabled_allocs),
                 static_cast<long long>(iterations));
    ok = false;
  }

  // --- gate 2: armed campaign, artifact schemas, bit-identity -----------
  const std::string dir = temp_dir("bench_obs");
  // Two identical worlds from the same config/seed (campaigns mutate the
  // world's address epoch, so each run gets its own copy).
  auto world_plain = topo::generate_world(topo::WorldConfig::tiny());
  auto world_armed = topo::generate_world(topo::WorldConfig::tiny());

  scan::CampaignOptions campaign;
  campaign.seed = 4242;
  const auto plain = scan::run_two_scan_campaign(world_plain, campaign);

  obs::RunObserver observer;
  obs::TelemetryOptions telemetry;
  telemetry.timeline.sample_every_virtual = 30 * util::kSecond;
  telemetry.flight.dump_path = dir + "/flight.json";
  telemetry.status.path = dir + "/status.json";
  telemetry.status.every_n_targets = 64;
  telemetry.status.min_write_interval_ms = 0.0;
  observer.configure_telemetry(telemetry);
  campaign.obs.observer = &observer;
  campaign.obs.scope = "bench";
  benchx::WallTimer armed_timer;
  const auto armed = scan::run_two_scan_campaign(world_armed, campaign);
  const double armed_ms = armed_timer.elapsed_ms();

  if (campaign_digest(plain) != campaign_digest(armed)) {
    std::fprintf(stderr,
                 "FAIL: armed telemetry changed the scan output "
                 "(execution-only contract broken)\n");
    ok = false;
  }

  // Chrome trace: object form, thread-name metadata, complete events.
  const std::string trace_json = obs::to_chrome_trace_json(
      observer.trace().snapshot(), observer.flight().events());
  std::size_t trace_events = 0;
  if (const auto doc = obs::JsonValue::parse(trace_json);
      doc.has_value() && has_keys(*doc, "trace.json",
                                  {"displayTimeUnit", "traceEvents"})) {
    for (const auto& event : doc->find("traceEvents")->items())
      if (!has_keys(event, "traceEvents[i]", {"ph", "pid", "tid"})) {
        ok = false;
        break;
      }
    trace_events = doc->find("traceEvents")->items().size();
    if (trace_events == 0) {
      std::fprintf(stderr, "FAIL: trace.json has no events\n");
      ok = false;
    }
  } else {
    std::fprintf(stderr, "FAIL: trace.json did not parse\n");
    ok = false;
  }

  // status.json: totals + per-shard rows, complete after the campaign.
  if (const auto doc = obs::JsonValue::parse(slurp(telemetry.status.path));
      doc.has_value() &&
      has_keys(*doc, "status.json", {"schema", "complete", "totals", "shards"})) {
    if (!doc->find("complete")->as_bool()) {
      std::fprintf(stderr, "FAIL: status.json not complete after campaign\n");
      ok = false;
    }
    for (const auto& row : doc->find("shards")->items())
      if (!has_keys(row, "shards[i]",
                    {"stage", "shard", "targets_total", "targets_sent",
                     "response_rate", "eta_s", "complete"})) {
        ok = false;
        break;
      }
  } else {
    std::fprintf(stderr, "FAIL: status.json did not parse\n");
    ok = false;
  }

  // flight dump: exit-reason document with the event schema.
  if (const auto doc = obs::JsonValue::parse(slurp(telemetry.flight.dump_path));
      doc.has_value() &&
      has_keys(*doc, "flight.json", {"schema", "reason", "events"})) {
    for (const auto& event : doc->find("events")->items())
      if (!has_keys(event, "events[i]",
                    {"kind", "stage", "shard", "virtual_s", "value", "seq"})) {
        ok = false;
        break;
      }
  } else {
    std::fprintf(stderr, "FAIL: flight.json did not parse\n");
    ok = false;
  }

  // timeline section: deterministic virtual series with points.
  const auto timeline_snapshot = observer.timeline().snapshot();
  std::size_t timeline_points = 0;
  if (const auto doc = obs::JsonValue::parse(timeline_snapshot.to_json());
      doc.has_value() &&
      has_keys(*doc, "time_series", {"virtual_interval_s", "virtual", "wall"})) {
    for (const auto& series : doc->find("virtual")->items()) {
      if (!has_keys(series, "virtual[i]", {"stage", "shard", "points"})) {
        ok = false;
        break;
      }
      timeline_points += series.find("points")->items().size();
    }
    if (timeline_points == 0) {
      std::fprintf(stderr, "FAIL: timeline has no virtual points\n");
      ok = false;
    }
  } else {
    std::fprintf(stderr, "FAIL: timeline JSON did not parse\n");
    ok = false;
  }

  // --- report + artifact -------------------------------------------------
  util::TablePrinter table({"Measurement", "Value"});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f ns/op", disabled_ns);
  table.add_row({"disabled telemetry tick", buf});
  table.add_row({"disabled tick allocs",
                 std::to_string(disabled_allocs)});
  std::snprintf(buf, sizeof buf, "%.1f ms", armed_ms);
  table.add_row({"armed tiny campaign", buf});
  table.add_row({"trace events", util::fmt_count(trace_events)});
  table.add_row({"timeline points", util::fmt_count(timeline_points)});
  table.add_row({"status writes",
                 util::fmt_count(observer.status().writes())});
  table.add_row({"flight dumps",
                 util::fmt_count(observer.flight().dump_count())});
  std::printf("%s\n", table.render().c_str());

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, campaign.seed, /*threads=*/1,
                             /*scan_shards=*/0);
  rows.meta("quick", static_cast<std::int64_t>(quick));
  rows.begin_row()
      .field("metric", "disabled_tick_ns_per_op")
      .field("value", disabled_ns);
  rows.begin_row()
      .field("metric", "disabled_tick_allocs")
      .field("value", static_cast<std::int64_t>(disabled_allocs));
  rows.begin_row()
      .field("metric", "trace_events")
      .field("value", static_cast<std::int64_t>(trace_events));
  rows.begin_row()
      .field("metric", "timeline_points")
      .field("value", static_cast<std::int64_t>(timeline_points));
  rows.write("BENCH_obs.json");
  std::printf("Wrote BENCH_obs.json  (sink %llu)\n",
              static_cast<unsigned long long>(g_sink));

  if (!ok) return 1;
  std::printf("PASS: telemetry-off overhead ~zero, all artifact schemas "
              "valid, scan output bit-identical\n");
  return 0;
}
