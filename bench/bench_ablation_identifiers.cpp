// Ablation: which parts of the paper's identifier design actually matter?
//
//  A. Engine ID alone vs engine ID + (last reboot, boots) tuple — the
//     tuple splits misconfigured/buggy shared engine IDs (§4.3, App. B).
//  B. One-scan vs two-scan methodology — without the second scan the
//     consistency filters cannot run and ephemeral/recycled addresses
//     contaminate the alias sets (§4.1.1, §4.4).
//  C. Precision/recall against simulation ground truth for each variant —
//     the "ground truth" evaluation the paper itself could not perform.
#include "baselines/compare.hpp"
#include "common.hpp"

using namespace snmpv3fp;

namespace {

baselines::PairMetrics metrics_for(const core::AliasResolution& resolution,
                                   const topo::World& world,
                                   const std::vector<net::IpAddress>& universe) {
  baselines::AliasSets sets;
  for (const auto& set : resolution.sets) sets.push_back(set.addresses);
  return baselines::pair_metrics(
      sets,
      [&](const net::IpAddress& address) -> std::int64_t {
        const auto index = world.device_index_at(address);
        return index == topo::kNoDevice ? -1
                                        : static_cast<std::int64_t>(index);
      },
      universe);
}

}  // namespace

int main() {
  benchx::print_header("Ablation", "identifier design choices");
  const auto& r = benchx::full_pipeline();

  std::vector<core::JoinedRecord> filtered = r.v4_records;
  filtered.insert(filtered.end(), r.v6_records.begin(), r.v6_records.end());
  std::vector<net::IpAddress> universe;
  for (const auto& record : filtered) universe.push_back(record.address);

  util::TablePrinter table({"Variant", "Alias sets", "Non-singleton",
                            "Pair precision", "Pair recall"});
  const auto add_variant = [&](const std::string& name,
                               const core::AliasOptions& options,
                               std::span<const core::JoinedRecord> records,
                               const std::vector<net::IpAddress>& uni) {
    const auto resolution = core::resolve_aliases(records, options);
    const auto metrics = metrics_for(resolution, r.world, uni);
    table.add_row({name, util::fmt_count(resolution.sets.size()),
                   util::fmt_count(resolution.non_singleton_count()),
                   util::fmt_double(metrics.precision(), 4),
                   util::fmt_double(metrics.recall(), 4)});
    return metrics;
  };

  // A: engine ID alone vs the shipped key.
  core::AliasOptions id_only;
  id_only.engine_id_only = true;
  const auto id_only_metrics =
      add_variant("engine ID only", id_only, filtered, universe);
  const auto shipped_metrics =
      add_variant("engine ID + tuple (shipped)", {}, filtered, universe);

  // B: skip the consistency filtering entirely (single-scan world view):
  // resolve over the raw join of scan 1 with itself.
  std::vector<core::JoinedRecord> unfiltered = r.v4_joined;
  unfiltered.insert(unfiltered.end(), r.v6_joined.begin(), r.v6_joined.end());
  for (auto& record : unfiltered) record.second = record.first;  // one scan
  std::vector<net::IpAddress> raw_universe;
  for (const auto& record : unfiltered) raw_universe.push_back(record.address);
  core::AliasOptions one_scan;
  one_scan.use_both_scans = false;
  add_variant("no filters, one scan", one_scan, unfiltered, raw_universe);

  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row(
      "tuple rescues precision vs engine-ID-only", "yes (App. B)",
      shipped_metrics.precision() > id_only_metrics.precision() ? "yes"
                                                                 : "NO");
  benchx::print_paper_row("shipped precision", "~1.0 (validated §6.2.2)",
                          util::fmt_double(shipped_metrics.precision(), 4));
  std::cout << "\n(The paper's operator survey §6.2.2 confirmed all surveyed\n"
               "alias sets; against full simulation ground truth we can also\n"
               "measure recall, which no Internet measurement could.)\n";
  return 0;
}
