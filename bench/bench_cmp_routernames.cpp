// §5.2: comparison with the (CAIDA-style) Router Names rDNS dataset.
// Paper: Router Names yields 12.4k dual-stack non-singleton sets (63.8k
// IPs, 5.2 per set) vs SNMPv3's 838k non-singleton sets and 2.5x more
// dual-stack sets; only 9 sets match exactly, ~5.9k overlap partially —
// the techniques are complementary.
#include "baselines/compare.hpp"
#include "baselines/router_names.hpp"
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("§5.2", "comparison with Router Names (rDNS)");
  const auto& r = benchx::router_pipeline();

  const auto ptr_records = topo::export_ptr_records(r.world);
  const auto names = baselines::run_router_names(ptr_records);
  std::printf("PTR records: %zu, domains: %zu (with usable rule: %zu)\n",
              ptr_records.size(), names.domains_total,
              names.domains_with_rule);

  // SNMPv3 alias sets as plain address lists.
  baselines::AliasSets snmp_sets;
  for (const auto& set : r.resolution.sets)
    snmp_sets.push_back(set.addresses);

  baselines::AliasSets names_nonsingleton, names_dual;
  std::size_t names_dual_ips = 0;
  for (const auto& set : names.alias_sets) {
    if (set.size() < 2) continue;
    names_nonsingleton.push_back(set);
    const bool has_v4 = std::any_of(set.begin(), set.end(),
                                    [](const auto& a) { return a.is_v4(); });
    const bool has_v6 = std::any_of(set.begin(), set.end(),
                                    [](const auto& a) { return a.is_v6(); });
    if (has_v4 && has_v6) {
      names_dual.push_back(set);
      names_dual_ips += set.size();
    }
  }
  const auto breakdown = core::breakdown_by_stack(r.resolution);

  std::printf("Router Names: %zu non-singleton sets, %zu dual-stack sets "
              "(%zu IPs, %.1f per set)\n",
              names_nonsingleton.size(), names_dual.size(), names_dual_ips,
              names_dual.empty() ? 0.0
                                 : static_cast<double>(names_dual_ips) /
                                       static_cast<double>(names_dual.size()));
  std::printf("SNMPv3:       %zu non-singleton sets, %zu dual-stack sets\n",
              r.resolution.non_singleton_count(), breakdown.dual_sets);

  const auto comparison =
      baselines::compare_alias_sets(snmp_sets, names_nonsingleton);
  std::printf("\nOverlap: %zu exact matches, %zu partially overlapping "
              "Router-Names sets\n",
              comparison.exact_matches, comparison.partial_overlaps);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row(
      "SNMPv3 dual-stack sets vs Router Names", ">2.5x",
      util::fmt_double(static_cast<double>(breakdown.dual_sets) /
                           static_cast<double>(std::max<std::size_t>(
                               names_dual.size(), 1)),
                       1) + "x");
  benchx::print_paper_row("exact set matches", "very few (9 of 12.4k)",
                          util::fmt_count(comparison.exact_matches));
  benchx::print_paper_row(
      "partial overlap of Router-Names sets", "~half",
      util::fmt_percent(static_cast<double>(comparison.partial_overlaps) /
                        static_cast<double>(std::max<std::size_t>(
                            names_nonsingleton.size(), 1))));
  return 0;
}
