// bench_world: procedural-world census sweeps — flat RSS vs address count
// (ROADMAP "Procedural billion-address worlds").
//
// Runs two-scan spec-mode campaigns over ProceduralConfig::census worlds of
// growing prefix size (1M -> 134M addresses in the full run) and records,
// per sweep, in BENCH_world.json:
//   targets_per_sec   probes pushed through the generator+fabric per wall
//                     second (both scans)
//   peak_rss_kb /     peak RSS during the sweep and its delta over the
//   rss_delta_kb      pre-sweep baseline — the O(responders) claim: the
//                     delta must NOT scale with the address count
//   responders        devices that answered scan 1
//   cache_*           lazy-device cache traffic (hits/misses/evictions)
//
// Usage: bench_world [--quick] [--gate]
//   --quick  two small sweeps (1M, 4M) — what scripts/check.sh runs
//   --gate   enforce the flat-memory assertion: RSS delta of the largest
//            sweep < 2x max(delta of the smallest, 24 MiB floor); exit
//            non-zero on violation or on JSON schema drift
//
// Peak RSS comes from /proc/self/status VmHWM, reset per phase by writing
// "5" to /proc/self/clear_refs (Linux-only; elsewhere rows carry
// cumulative peaks, flagged by meta.rss_reset = 0, and the gate is
// skipped). Sweeps run smallest first so freed-but-retained heap from an
// earlier phase can never mask a later phase's true demand.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/json.hpp"
#include "scan/campaign.hpp"
#include "topo/procedural.hpp"

using namespace snmpv3fp;

namespace {

// Parses one "Key:  <n> kB" line out of /proc/self/status.
std::size_t read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0)
      return static_cast<std::size_t>(
          std::strtoull(line.c_str() + std::strlen(key), nullptr, 10));
  }
  return 0;
}

// Resets VmHWM to the current RSS; false when unsupported.
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear.is_open()) return false;
  clear << "5";
  clear.flush();
  return clear.good();
}

struct SweepResult {
  std::uint64_t targets = 0;  // addresses per scan
  double wall_ms = 0;
  double targets_per_sec = 0;
  std::size_t peak_rss_kb = 0;
  std::size_t rss_delta_kb = 0;
  std::uint64_t responders = 0;
  topo::WorldCacheStats cache;
};

SweepResult run_sweep(std::uint64_t addresses) {
  SweepResult out;
  const auto config = topo::ProceduralConfig::census(addresses);
  const topo::ProceduralWorld world(config);
  // The ProceduralWorld itself is O(regions); everything the campaign
  // allocates is inside the measured window.
  reset_peak_rss();
  const std::size_t baseline_kb = read_status_kb("VmRSS:");

  scan::CampaignOptions options;
  options.seed = 20210416;
  // Virtual-time rate: it never limits wall speed, but it DOES size the
  // outstanding-probe window (rate x sent_horizon entries per shard) — the
  // constant working set the flat-RSS gate measures. 50 kpps keeps that
  // window (~70k entries) well under the gate floor so even the smallest
  // sweep measures the plateau, not the ramp.
  options.rate_pps = 50000.0;
  scan::TargetSpec spec;
  for (const auto& region : config.regions) spec.ranges.push_back(region.v4);
  options.target_spec = spec;
  out.targets = spec.total();

  benchx::WallTimer timer;
  topo::ProceduralWorld sweep_world(config);
  const auto pair = scan::run_two_scan_campaign(sweep_world, options);
  out.wall_ms = timer.elapsed_ms();

  out.peak_rss_kb = read_status_kb("VmHWM:");
  out.rss_delta_kb =
      out.peak_rss_kb > baseline_kb ? out.peak_rss_kb - baseline_kb : 0;
  out.targets_per_sec =
      static_cast<double>(2 * out.targets) / (out.wall_ms / 1000.0);
  out.responders = pair.scan1.responsive();
  out.cache = pair.responder_cache;
  return out;
}

// Fails closed on drift: scripts/check.sh relies on this exit code.
bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("rss_reset") || !meta->find("gate"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().empty()) return false;
  static constexpr const char* kKeys[] = {
      "targets",       "wall_ms",      "targets_per_sec", "peak_rss_kb",
      "rss_delta_kb",  "responders",   "cache_hits",      "cache_misses",
      "cache_evictions", "cache_hit_rate"};
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    const auto* kind = row.find("kind");
    if (!kind || kind->as_string() != "census_sweep") return false;
    for (const char* key : kKeys)
      if (!row.find(key)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  benchx::print_header(
      "world", "Procedural census sweeps: flat RSS vs address count");

  const bool rss_reset = reset_peak_rss();
  if (!rss_reset)
    std::printf("note: peak-RSS reset unavailable; reporting cumulative "
                "VmHWM and skipping the gate\n\n");

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, /*seed=*/20210416, /*threads=*/0,
                             /*scan_shards=*/scan::kDefaultScanShards);
  rows.meta("rss_reset", std::int64_t{rss_reset});
  rows.meta("quick", std::int64_t{quick});
  rows.meta("gate", std::int64_t{gate});

  // Smallest first (see the peak-RSS note up top). The full run's largest
  // sweep is the ISSUE's 100M+ census: 2^27 = 134,217,728 addresses.
  const std::vector<std::uint64_t> counts =
      quick ? std::vector<std::uint64_t>{1ull << 20, 1ull << 22}
            : std::vector<std::uint64_t>{1ull << 20, 1ull << 24, 1ull << 27};

  util::TablePrinter table({"Targets", "Wall s", "Targets/s", "RSS delta",
                            "Responders", "Cache hit%"});
  std::vector<SweepResult> results;
  for (const std::uint64_t n : counts) {
    const auto r = run_sweep(n);
    results.push_back(r);
    table.add_row({util::fmt_count(r.targets),
                   util::fmt_double(r.wall_ms / 1000.0, 1),
                   util::fmt_count(static_cast<std::uint64_t>(
                       r.targets_per_sec)),
                   util::fmt_count(r.rss_delta_kb) + " kB",
                   util::fmt_count(r.responders),
                   util::fmt_double(100.0 * r.cache.hit_rate(), 1)});
    rows.begin_row()
        .field("kind", "census_sweep")
        .field("targets", static_cast<std::int64_t>(r.targets))
        .field("wall_ms", r.wall_ms)
        .field("targets_per_sec", r.targets_per_sec)
        .field("peak_rss_kb", static_cast<std::int64_t>(r.peak_rss_kb))
        .field("rss_delta_kb", static_cast<std::int64_t>(r.rss_delta_kb))
        .field("responders", static_cast<std::int64_t>(r.responders))
        .field("cache_hits", static_cast<std::int64_t>(r.cache.hits))
        .field("cache_misses", static_cast<std::int64_t>(r.cache.misses))
        .field("cache_evictions",
               static_cast<std::int64_t>(r.cache.evictions))
        .field("cache_hit_rate", r.cache.hit_rate());
  }
  std::printf("%s\n", table.render().c_str());

  // Flat-memory assertion: the largest sweep covers 4x-128x the address
  // space of the smallest but must stay within 2x of its RSS delta (with
  // a 24 MiB floor so allocator noise on tiny sweeps can't flake the
  // ratio). O(responders), not O(addresses).
  const std::size_t floor_kb = 24 * 1024;
  const std::size_t small_kb =
      results.front().rss_delta_kb > floor_kb ? results.front().rss_delta_kb
                                              : floor_kb;
  const std::size_t large_kb = results.back().rss_delta_kb;
  const bool flat = large_kb < 2 * small_kb;
  std::printf("flat-memory check: delta@%s = %s kB vs 2 x max(delta@%s, 24 "
              "MiB) = %s kB -> %s\n",
              util::fmt_count(results.back().targets).c_str(),
              util::fmt_count(large_kb).c_str(),
              util::fmt_count(results.front().targets).c_str(),
              util::fmt_count(2 * small_kb).c_str(), flat ? "OK" : "FAIL");
  rows.meta("flat_memory_ok", std::int64_t{flat});

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr, "FAIL: BENCH_world.json failed its schema check\n");
    return 1;
  }
  rows.write("BENCH_world.json");
  std::printf("Wrote BENCH_world.json\n");
  if (gate && rss_reset && !flat) {
    std::fprintf(stderr,
                 "FAIL: RSS delta grew with address count (gate violated)\n");
    return 1;
  }
  return 0;
}
