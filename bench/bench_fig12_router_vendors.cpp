// Figure 12: router vendor popularity (alias sets tagged by the ITDK /
// RIPE Atlas router datasets), stacked by stack class.
// Paper: 346,951 routers — Cisco ~240k, Huawei ~52k, then Net-SNMP,
// Juniper, H3C, OneAccess, Ruijie, Brocade, Adtran, Ambit; the IPv6-only
// and dual-stack fractions are much higher than for all devices.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 12", "router vendor popularity");
  const auto& r = benchx::router_pipeline();

  const auto popularity = core::vendor_popularity(r.devices,
                                                  /*routers_only=*/true);
  std::size_t total = 0;
  for (const auto& entry : popularity) total += entry.total();

  util::TablePrinter table(
      {"Vendor", "Router sets", "IPv4 only", "IPv6 only", "Dual-stack",
       "Share"});
  for (std::size_t i = 0; i < popularity.size() && i < 10; ++i) {
    const auto& entry = popularity[i];
    table.add_row({entry.vendor, util::fmt_count(entry.total()),
                   util::fmt_count(entry.v4_only),
                   util::fmt_count(entry.v6_only), util::fmt_count(entry.dual),
                   util::fmt_percent(static_cast<double>(entry.total()) /
                                     static_cast<double>(total))});
  }
  table.print(std::cout);
  std::printf("\nIdentified routers: %zu (paper: 346,951 at 1:1 scale)\n",
              total);

  std::cout << "\nShape checks:\n";
  const auto share = [&](const std::string& vendor) {
    for (const auto& e : popularity)
      if (e.vendor == vendor)
        return static_cast<double>(e.total()) / static_cast<double>(total);
    return 0.0;
  };
  benchx::print_paper_row("Cisco share of routers", "~69%",
                          util::fmt_percent(share("Cisco")));
  benchx::print_paper_row("Huawei share of routers", "~15%",
                          util::fmt_percent(share("Huawei")));
  benchx::print_paper_row("top-4 vendors (Cisco+Huawei+Juniper+H3C+NetSNMP)",
                          ">95% with Net-SNMP", util::fmt_percent(
                              share("Cisco") + share("Huawei") +
                              share("Juniper") + share("H3C") +
                              share("Net-SNMP")));
  return 0;
}
