// §5.3-§5.4: comparison with IP-ID based alias resolution (MIDAR for IPv4,
// Speedtrap for IPv6) and the combined-coverage argument.
// Paper: MIDAR: 8.4M sets, 94k non-singleton (363k IPs, 3.9/set);
// Speedtrap: 525k sets, 5.3k non-singleton; SNMPv3 finds almost an order
// of magnitude more non-singleton sets; combining techniques raises
// de-aliased router IPv4 coverage from 11.7% / 14.8% to ~23%.
#include <set>

#include "baselines/compare.hpp"
#include "baselines/midar.hpp"
#include "baselines/speedtrap.hpp"
#include "common.hpp"
#include "sim/stack.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("§5.3-5.4", "comparison with MIDAR / Speedtrap");
  const auto& r = benchx::router_pipeline();

  // Probe the union router dataset, as MIDAR does with candidate router IPs.
  std::vector<net::IpAddress> v4_targets, v6_targets;
  std::set<net::IpAddress> seen;
  for (const auto* dataset : {&r.itdk_v4, &r.itdk_v6, &r.atlas}) {
    for (const auto& a : dataset->addresses) {
      if (!seen.insert(a).second) continue;
      (a.is_v4() ? v4_targets : v6_targets).push_back(a);
    }
  }
  // Cap runtime: MIDAR-style probing is far heavier than SNMPv3 — sample.
  const std::size_t kMaxTargets = 60000;
  if (v4_targets.size() > kMaxTargets) v4_targets.resize(kMaxTargets);
  if (v6_targets.size() > kMaxTargets) v6_targets.resize(kMaxTargets);

  sim::StackSimulator stack(r.world, 4242);
  const auto midar = baselines::run_midar(stack, v4_targets, 20 * util::kDay);
  const auto speedtrap =
      baselines::run_speedtrap(stack, v6_targets, 22 * util::kDay);

  const auto summarize = [](const char* name,
                            const baselines::AliasSets& sets,
                            std::size_t probed) {
    std::size_t non_singleton = 0, ips = 0;
    for (const auto& set : sets)
      if (set.size() > 1) {
        ++non_singleton;
        ips += set.size();
      }
    std::printf("%-10s probed %6zu IPs -> %6zu sets, %5zu non-singleton "
                "(%zu IPs, %.1f per set)\n",
                name, probed, sets.size(), non_singleton, ips,
                non_singleton == 0 ? 0.0
                                   : static_cast<double>(ips) /
                                         static_cast<double>(non_singleton));
    return std::pair{non_singleton, ips};
  };
  const auto [midar_ns, midar_ips] =
      summarize("MIDAR", midar.alias_sets, v4_targets.size());
  const auto [st_ns, st_ips] =
      summarize("Speedtrap", speedtrap.alias_sets, v6_targets.size());

  baselines::AliasSets snmp_sets;
  for (const auto& set : r.resolution.sets) snmp_sets.push_back(set.addresses);
  std::size_t snmp_ns = r.resolution.non_singleton_count();
  std::printf("%-10s %6s %8s -> %6zu sets, %5zu non-singleton\n", "SNMPv3", "",
              "", r.resolution.sets.size(), snmp_ns);

  const auto midar_cmp = baselines::compare_alias_sets(snmp_sets,
                                                       midar.alias_sets);
  std::printf("\nMIDAR sets matching SNMPv3 exactly: %zu, partially: %zu\n",
              midar_cmp.exact_matches, midar_cmp.partial_overlaps);

  // §5.4 combined coverage over the IPv4 union dataset.
  core::AddressSet snmp_dealiased;
  for (const auto& set : r.resolution.sets)
    if (set.addresses.size() > 1)
      for (const auto& a : set.addresses) snmp_dealiased.insert(a);
  core::AddressSet midar_dealiased;
  for (const auto& set : midar.alias_sets)
    if (set.size() > 1)
      for (const auto& a : set) midar_dealiased.insert(a);

  std::size_t universe = 0, by_snmp = 0, by_midar = 0, by_either = 0;
  for (const auto& a : v4_targets) {
    ++universe;
    const bool s = snmp_dealiased.count(a) > 0;
    const bool m = midar_dealiased.count(a) > 0;
    by_snmp += s;
    by_midar += m;
    by_either += s || m;
  }
  std::cout << "\nCombined de-aliased coverage of router IPv4 addresses "
               "(paper §5.4):\n";
  benchx::print_paper_row("MIDAR only", "11.7%",
                          util::fmt_percent(static_cast<double>(by_midar) /
                                            static_cast<double>(universe)));
  benchx::print_paper_row("SNMPv3 only", "14.8%",
                          util::fmt_percent(static_cast<double>(by_snmp) /
                                            static_cast<double>(universe)));
  benchx::print_paper_row("combined", "~23%",
                          util::fmt_percent(static_cast<double>(by_either) /
                                            static_cast<double>(universe)));

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("SNMPv3 non-singleton sets vs MIDAR", "~9x",
                          util::fmt_double(static_cast<double>(snmp_ns) /
                                           static_cast<double>(std::max<
                                               std::size_t>(midar_ns, 1)),
                                           1) + "x");
  benchx::print_paper_row("MIDAR IPs per non-singleton set", "3.9",
                          util::fmt_double(midar_ns == 0 ? 0.0
                              : static_cast<double>(midar_ips) /
                                    static_cast<double>(midar_ns), 1));
  (void)st_ns; (void)st_ips;
  return 0;
}
