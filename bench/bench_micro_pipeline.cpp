// Microbenchmarks (google-benchmark): the analysis pipeline — join,
// filter and alias-resolution throughput over synthetic record sets.
#include <benchmark/benchmark.h>

#include "core/alias.hpp"
#include "core/filters.hpp"
#include "core/fingerprint.hpp"
#include "net/registry.hpp"
#include "util/rng.hpp"

using namespace snmpv3fp;

namespace {

std::vector<core::JoinedRecord> make_records(std::size_t count) {
  util::Rng rng(42);
  std::vector<core::JoinedRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::JoinedRecord record;
    record.address = net::Ipv4(static_cast<std::uint32_t>(0x05000000 + i));
    // ~8 addresses share a device.
    const auto device = static_cast<std::uint32_t>(i / 8);
    record.first.target = record.address;
    record.first.engine_id = snmp::EngineId::make_mac(
        net::kPenCisco, net::MacAddress::from_oui(0x00000c, device));
    record.first.engine_boots = 3 + device % 40;
    record.first.engine_time = 100000 + device * 13;
    record.first.receive_time = 100 * util::kSecond;
    record.second = record.first;
    record.second.receive_time += 6 * util::kDay;
    record.second.engine_time += 6 * 86400;
    if (rng.chance(0.1)) record.second.engine_boots += 1;  // rebooted
    records.push_back(std::move(record));
  }
  return records;
}

void BM_FilterPipeline(benchmark::State& state) {
  const auto base = make_records(static_cast<std::size_t>(state.range(0)));
  const core::FilterPipeline pipeline;
  for (auto _ : state) {
    auto records = base;
    benchmark::DoNotOptimize(pipeline.apply(records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterPipeline)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AliasResolution(benchmark::State& state) {
  auto records = make_records(static_cast<std::size_t>(state.range(0)));
  const core::FilterPipeline pipeline;
  pipeline.apply(records);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::resolve_aliases(records));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(
                                                   records.size()));
}
BENCHMARK(BM_AliasResolution)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Fingerprint(benchmark::State& state) {
  const auto records = make_records(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fingerprint_engine_id(records[i % records.size()].engine_id()));
    ++i;
  }
}
BENCHMARK(BM_Fingerprint);

}  // namespace

BENCHMARK_MAIN();
