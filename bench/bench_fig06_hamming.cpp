// Figure 6: relative Hamming weight of Octets vs non-SNMPv3-conforming
// engine IDs. Paper: Octets center on 0.5 (random source); non-conforming
// are positively skewed (fewer ones than random).
#include "common.hpp"
#include "util/stats.hpp"

using namespace snmpv3fp;

namespace {
void print_histogram(const std::string& label,
                     const std::vector<double>& weights) {
  util::Histogram histogram(0.0, 1.0, 20);
  util::RunningStats stats;
  for (const double w : weights) {
    histogram.add(w);
    stats.add(w);
  }
  std::cout << label << " (n=" << weights.size()
            << ", mean=" << util::fmt_double(stats.mean(), 3) << ")\n";
  for (std::size_t bin = 0; bin < histogram.bins(); ++bin) {
    const int bar = static_cast<int>(histogram.bin_fraction(bin) * 200);
    std::printf("  [%.2f-%.2f) %5.1f%% %s\n", histogram.bin_low(bin),
                histogram.bin_low(bin) + 0.05,
                histogram.bin_fraction(bin) * 100.0,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}
}  // namespace

int main() {
  benchx::print_header("Figure 6",
                       "relative Hamming weight of Octets vs non-conforming");
  const auto& r = benchx::full_pipeline();

  const auto octets = core::relative_hamming_weights(
      r.v4_joined, snmp::EngineIdFormat::kOctets);
  const auto nonconforming = core::relative_hamming_weights(
      r.v4_joined, snmp::EngineIdFormat::kNonConforming);

  print_histogram("Octets format", octets);
  std::cout << "\n";
  print_histogram("Non-SNMPv3-conforming", nonconforming);

  util::RunningStats octet_stats, nc_stats;
  for (const double w : octets) octet_stats.add(w);
  for (const double w : nonconforming) nc_stats.add(w);
  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("Octets mean relative weight", "~0.50",
                          util::fmt_double(octet_stats.mean(), 3));
  benchx::print_paper_row("Non-conforming mean (positive skew)", "<0.45",
                          util::fmt_double(nc_stats.mean(), 3));
  return 0;
}
