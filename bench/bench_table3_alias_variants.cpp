// Table 3 (Appendix A): the alias-resolution strategy matrix — exact /
// round / divide-by-20 / divide-by-20+round last-reboot matching, keyed on
// the first scan only or on both scans.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Table 3 (Appendix A)",
                       "comparison of alias resolution approaches");
  const auto& r = benchx::full_pipeline();

  std::vector<core::JoinedRecord> combined = r.v4_records;
  combined.insert(combined.end(), r.v6_records.begin(), r.v6_records.end());

  util::TablePrinter table({"Strategy", "Alias sets", "Non-singleton sets",
                            "IPs in non-singletons", "IPs per non-singleton"});
  for (const auto match :
       {core::RebootMatch::kExact, core::RebootMatch::kRound,
        core::RebootMatch::kDivide20, core::RebootMatch::kDivide20Round}) {
    for (const bool both : {false, true}) {
      core::AliasOptions options;
      options.match = match;
      options.use_both_scans = both;
      const auto resolution = core::resolve_aliases(combined, options);
      table.add_row({std::string(core::to_string(match)) +
                         (both ? " both" : " first"),
                     util::fmt_count(resolution.sets.size()),
                     util::fmt_count(resolution.non_singleton_count()),
                     util::fmt_count(resolution.ips_in_non_singletons()),
                     util::fmt_double(resolution.mean_ips_per_non_singleton(),
                                      1)});
    }
  }
  table.print(std::cout);

  std::cout <<
      "\nPaper (Table 3): Exact first 5.3M sets / 903k ns / 8.2M IPs / 9.1;"
      "\n                 Exact both 5.9M / 892k / 7.5M / 8.4;"
      "\n                 Round first 4.6M / 826k / 8.7M / 10.6;"
      "\n                 Divide-by-20 both (shipped) 4.6M / 824k / 8.7M / 10.6\n"
      "\nExpected shape: exact matching fragments sets (more sets, fewer IPs"
      "\nper set); coarser binning merges them back. Both-scan keying splits"
      "\nsets that exact matching over one scan would (wrongly) keep merged.\n";
  return 0;
}
