// §9 (future work, implemented here): inferring NAT frontends and load
// balancers from SNMPv3 identity inconsistencies. The paper discards
// inconsistent responders during filtering and suggests explaining them as
// future work; this extension classifies them with a re-probe stage and
// validates the verdicts against simulation ground truth.
#include <set>

#include "common.hpp"
#include "core/anomaly.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("§9 extension", "NAT / load-balancer inference");
  const auto& r = benchx::full_pipeline();

  // Re-probe through a fresh fabric over the (post-campaign) world.
  sim::FabricConfig config;
  config.seed = 1234;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  sim::Fabric fabric(r.world, config);
  fabric.clock().advance(20 * util::kDay);

  const auto report = core::classify_anomalies(
      r.v4_campaign.scan1, r.v4_campaign.scan2, fabric,
      {net::Ipv4(198, 51, 100, 7), 4444}, r.as_table);

  std::printf("anomalous addresses classified: %zu\n",
              report.anomalies.size());
  std::printf("  load balancers: %zu\n", report.load_balancer_count());
  std::printf("  address churn:  %zu\n", report.churn_count());
  std::printf("  NAT frontends:  %zu\n", report.nat_count());
  std::printf("  unstable:       %zu\n", report.unstable_count());

  // Ground-truth validation of the two novel verdicts.
  std::size_t lb_checked = 0, lb_correct = 0;
  std::size_t nat_checked = 0, nat_correct = 0;
  for (const auto& anomaly : report.anomalies) {
    const auto* device = r.world.device_at(anomaly.address);
    if (anomaly.kind == core::AnomalyKind::kLoadBalancer) {
      ++lb_checked;
      lb_correct += device != nullptr && !device->backend_engines.empty();
    } else if (anomaly.kind == core::AnomalyKind::kNat) {
      ++nat_checked;
      if (device != nullptr) {
        // True NAT devices hold interfaces in more than one AS prefix.
        std::set<std::uint32_t> ases;
        for (const auto& itf : device->interfaces)
          if (itf.v4)
            if (const auto info = r.as_table.lookup(net::IpAddress(*itf.v4)))
              ases.insert(info->asn);
        nat_correct += ases.size() >= 2;
      }
    }
  }

  std::cout << "\nGround-truth validation:\n";
  benchx::print_paper_row(
      "load-balancer verdicts correct", "n/a (future work)",
      lb_checked == 0 ? "n/a"
                      : util::fmt_percent(static_cast<double>(lb_correct) /
                                          static_cast<double>(lb_checked)) +
                            " of " + std::to_string(lb_checked));
  benchx::print_paper_row(
      "NAT verdicts correct", "n/a (future work)",
      nat_checked == 0 ? "n/a"
                       : util::fmt_percent(static_cast<double>(nat_correct) /
                                           static_cast<double>(nat_checked)) +
                             " of " + std::to_string(nat_checked));
  std::cout << "\n(The paper: \"We hope that our technique can be used for\n"
               "answering other network analytics questions in the future,\n"
               "e.g., inferring NAT and load balancers in the wild.\" — §9)\n";
  return 0;
}
