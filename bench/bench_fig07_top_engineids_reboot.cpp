// Figure 7: last-reboot-time spread of the most-shared engine IDs.
// Paper: five of the six most popular engine IDs have last-reboot values
// spanning multiple years — proof they are *reused* across devices (the
// Cisco constant-engine-ID bug is the #1 IPv4 entry with 181k IPs) and why
// the (last reboot, boots) tuple must back the engine ID up.
#include "common.hpp"

using namespace snmpv3fp;

namespace {
void print_top(const std::string& family,
               const std::vector<core::SharedEngineId>& top) {
  for (std::size_t i = 0; i < top.size(); ++i) {
    const auto& shared = top[i];
    const double span_days =
        shared.last_reboots.max() - shared.last_reboots.min();
    std::printf("  %s #%zu: %-28s IPs=%-7zu reboot span=%.0f days\n",
                family.c_str(), i + 1,
                shared.engine_id.to_hex().substr(0, 28).c_str(),
                shared.address_count, span_days);
  }
}
}  // namespace

int main() {
  benchx::print_header("Figure 7",
                       "last reboot time of the top-3 engine IDs per family");
  const auto& r = benchx::full_pipeline();

  const auto top_v4 = core::top_shared_engine_ids(r.v4_joined, 3);
  const auto top_v6 = core::top_shared_engine_ids(r.v6_joined, 3);
  print_top("IPv4", top_v4);
  print_top("IPv6", top_v6);

  std::cout << "\nShape checks:\n";
  if (!top_v4.empty()) {
    benchx::print_paper_row("#1 IPv4 engine ID", "800000090300000000000000",
                            top_v4.front().engine_id.to_hex());
    const double span_years = (top_v4.front().last_reboots.max() -
                               top_v4.front().last_reboots.min()) /
                              365.0;
    benchx::print_paper_row("#1 IPv4 reboot span", "multiple years",
                            util::fmt_double(span_years, 1) + " years");
  }
  std::cout << "\n(An engine ID reused across devices shows a last-reboot\n"
               "distribution spanning years; a genuinely unique engine ID\n"
               "would collapse to one point.)\n";
  return 0;
}
