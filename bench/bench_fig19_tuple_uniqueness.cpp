// Figure 19 (Appendix B): uniqueness of the (last reboot time, engine
// boots) tuple — for each IP, how many distinct engine IDs share its
// tuple. Paper: 97.2% (IPv4) and 99.8% (IPv6) of IPs have a tuple that
// maps to a single engine ID.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 19 (Appendix B)",
                       "engine IDs per (last reboot, boots) tuple");
  const auto& r = benchx::full_pipeline();

  const auto v4_counts = core::engine_ids_per_tuple(r.v4_joined);
  const auto v6_counts = core::engine_ids_per_tuple(r.v6_joined);

  util::Ecdf v4, v6;
  for (const auto c : v4_counts) v4.add(static_cast<double>(c));
  for (const auto c : v6_counts) v6.add(static_cast<double>(c));
  v4.finalize();
  v6.finalize();

  const std::vector<double> xs = {1, 2, 5, 10, 100};
  benchx::print_ecdf_at("IPv4: engine IDs per tuple", v4, xs);
  benchx::print_ecdf_at("IPv6: engine IDs per tuple", v6, xs);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("IPv4 IPs with unique-engine-ID tuple", "97.2%",
                          util::fmt_percent(v4.fraction_at_most(1)));
  benchx::print_paper_row("IPv6 IPs with unique-engine-ID tuple", "99.8%",
                          util::fmt_percent(v6.fraction_at_most(1)));
  return 0;
}
