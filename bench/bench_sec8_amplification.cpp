// §8: the amplification anomaly — some SNMPv3 agents answer one discovery
// request with many (identical) responses.
// Paper: 182k IPv4 addresses responded more than once in scan 1; 48
// returned over 1,000 responses; the worst single address sent 48.5M
// packets over two hours.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("§8", "multi-response / amplification census");
  const auto& r = benchx::full_pipeline();

  const auto census = [](const scan::ScanResult& scan) {
    std::size_t multi = 0, over_10 = 0, over_100 = 0;
    std::size_t max_count = 0;
    for (const auto& record : scan.records) {
      if (record.response_count > 1) ++multi;
      if (record.response_count > 10) ++over_10;
      if (record.response_count > 100) ++over_100;
      max_count = std::max(max_count, record.response_count);
    }
    std::printf("  responsive IPs: %zu; multi-response: %zu (%.2f%%); "
                ">10 responses: %zu; >100: %zu; max: %zu\n",
                scan.responsive(), multi,
                100.0 * static_cast<double>(multi) /
                    static_cast<double>(scan.responsive()),
                over_10, over_100, max_count);
    return multi;
  };
  std::cout << "IPv4 scan 1:\n";
  const std::size_t multi1 = census(r.v4_campaign.scan1);
  std::cout << "IPv4 scan 2:\n";
  census(r.v4_campaign.scan2);

  // Amplification factor: response bytes received per probe byte sent for
  // the worst offender.
  std::size_t worst = 0;
  net::IpAddress worst_addr;
  for (const auto& record : r.v4_campaign.scan1.records) {
    if (record.response_count > worst) {
      worst = record.response_count;
      worst_addr = record.target;
    }
  }
  std::cout << "\nShape checks:\n";
  benchx::print_paper_row(
      "IPs answering more than once (scan 1)", "~0.6%",
      util::fmt_percent(static_cast<double>(multi1) /
                        static_cast<double>(
                            r.v4_campaign.scan1.responsive())));
  benchx::print_paper_row("worst amplifier (responses to one probe)",
                          "48.5M over 2h (1 host)",
                          util::fmt_count(worst) + " from " +
                              worst_addr.to_string());
  std::cout << "\n(UDP + spoofable source + >1 response per request = "
               "reflective amplification primitive; the paper reported this "
               "to vendors.)\n";
  return 0;
}
