// Figure 16: vendor popularity inside the top-10 networks by router count.
// Paper: 4 EU, 4 NA, 1 AS, 1 SA networks of 4.6k-9.4k routers; Cisco
// dominates 6 of 10; Huawei dominates the Asian and two European networks;
// within each network >95% of routers typically belong to 1-2 vendors.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 16", "vendor popularity in the top-10 ASes");
  const auto& r = benchx::router_pipeline();

  const auto rows = core::vendor_share_top_ases(r.devices, 10);
  util::TablePrinter table({"AS (routers)", "Cisco", "Huawei", "Net-SNMP",
                            "Juniper", "Other", "Top-2 vendors"});
  std::size_t cisco_dominant = 0;
  for (const auto& row : rows) {
    const auto sorted = row.vendor_tally.sorted();
    double top2 = 0.0;
    for (std::size_t i = 0; i < sorted.size() && i < 2; ++i)
      top2 += static_cast<double>(sorted[i].second) /
              static_cast<double>(row.routers);
    if (!sorted.empty() && sorted.front().first == "Cisco") ++cisco_dominant;
    std::vector<std::string> cells = {
        row.label + " (" +
        util::fmt_compact(static_cast<double>(row.routers)) + ")"};
    for (const std::string vendor :
         {"Cisco", "Huawei", "Net-SNMP", "Juniper"}) {
      cells.push_back(util::fmt_percent(row.vendor_tally.fraction(vendor)));
    }
    double named = row.vendor_tally.fraction("Cisco") +
                   row.vendor_tally.fraction("Huawei") +
                   row.vendor_tally.fraction("Net-SNMP") +
                   row.vendor_tally.fraction("Juniper");
    cells.push_back(util::fmt_percent(1.0 - named));
    cells.push_back(util::fmt_percent(top2));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("networks where Cisco dominates", "6 of 10",
                          std::to_string(cisco_dominant) + " of " +
                              std::to_string(rows.size()));
  std::cout << "\n(Paper regions of the top-10: 4x EU, 4x NA, 1x AS, 1x SA; "
               "sizes 9.4k-4.6k routers. World scale divides sizes by the "
               "configured router_scale.)\n";
  return 0;
}
