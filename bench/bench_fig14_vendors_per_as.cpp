// Figure 14: number of distinct router vendors per AS, as ECDFs over ASes
// with >= 5/20/100/1000 identified routers. Paper: in 40% of 5+ router
// networks all routers are single-vendor; <10% of networks exceed five
// vendors; bigger networks host more vendors.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 14", "router vendors per AS");
  const auto& r = benchx::router_pipeline();
  const auto rollups = core::rollup_by_as(r.devices);

  std::printf("ASes with identified routers: %zu\n\n", rollups.size());

  const std::vector<double> xs = {1, 2, 3, 5, 10};
  for (const std::size_t threshold : {1u, 5u, 20u, 100u, 1000u}) {
    util::Ecdf ecdf;
    for (const auto& rollup : rollups)
      if (rollup.routers >= threshold)
        ecdf.add(static_cast<double>(rollup.distinct_vendors()));
    ecdf.finalize();
    if (ecdf.empty()) continue;
    benchx::print_ecdf_at("ASes with " + std::to_string(threshold) +
                              "+ routers: #vendors",
                          ecdf, xs);
  }

  util::Ecdf five_plus;
  for (const auto& rollup : rollups)
    if (rollup.routers >= 5)
      five_plus.add(static_cast<double>(rollup.distinct_vendors()));
  five_plus.finalize();
  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("5+ router ASes with a single vendor", "~40%",
                          util::fmt_percent(five_plus.fraction_at_most(1)));
  benchx::print_paper_row("5+ router ASes with > 5 vendors", "<10%",
                          util::fmt_percent(1.0 -
                                            five_plus.fraction_at_most(5)));
  std::cout << "\nPer-AS router-count funnel (paper §6.4.1: 22,787 / 4,059 / "
               "1,557 / 381 / 55 at 1:1):\n";
  for (const std::size_t threshold : {1u, 5u, 20u, 100u, 1000u}) {
    std::size_t count = 0;
    for (const auto& rollup : rollups) count += rollup.routers >= threshold;
    std::printf("  ASes with >= %4u routers: %zu\n", threshold, count);
  }
  return 0;
}
