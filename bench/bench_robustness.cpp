// Robustness: fault-tolerant campaign machinery under adverse conditions.
//
// Three experiments over one mid-size world:
//   1. checkpoint/resume — overhead of checkpointing a campaign, size of
//      the checkpoint artifact, and the wall-time saved by resuming a
//      killed campaign instead of restarting it (results stay identical);
//   2. adaptive backoff — responsiveness with and without the pacer when
//      devices police inbound SNMP (device_rate_limit_pps);
//   3. hostile fabric — corruption-rate sweep: every corrupted response is
//      dropped at decode and accounted, never crashing the scan.
// Machine-readable rows land in BENCH_robustness.json.
#include <cstdio>

#include "common.hpp"
#include "scan/campaign.hpp"
#include "scan/checkpoint.hpp"
#include "topo/generator.hpp"

using namespace snmpv3fp;

namespace {

topo::WorldConfig bench_world() {
  topo::WorldConfig config = topo::WorldConfig::tiny();
  config.seed = 23;
  config.router_scale = 60.0;
  config.mega_scale = 60.0;
  config.device_scale = 600.0;
  config.tail_as_count = 40;
  return config;
}

scan::CampaignOptions base_options() {
  scan::CampaignOptions options;
  options.seed = 2026;
  options.shards = 8;
  return options;
}

scan::CampaignPair run_campaign(const scan::CampaignOptions& options) {
  topo::World world = topo::generate_world(bench_world());
  return scan::run_two_scan_campaign(world, options);
}

std::size_t file_size(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return 0;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  return size < 0 ? 0 : static_cast<std::size_t>(size);
}

}  // namespace

int main() {
  benchx::print_header("Robustness",
                       "checkpoint/resume, adaptive backoff, hostile fabric");
  benchx::JsonRows rows;
  const auto base = base_options();
  benchx::stamp_run_metadata(rows, base.seed, 0, base.shards);

  // ---- 1. checkpoint/resume ----------------------------------------------
  benchx::WallTimer timer;
  const auto plain = run_campaign(base);
  const double plain_ms = timer.elapsed_ms();

  // Checkpoint frequency is a wall-time/recovery-granularity tradeoff:
  // every boundary serializes the whole shard store.
  const std::string path = "BENCH_robustness_ckpt.json.tmp-artifact";
  std::printf("\nCheckpoint overhead vs frequency (plain: %.1f ms):\n",
              plain_ms);
  for (const std::size_t every : {4096u, 1024u, 256u}) {
    scan::remove_checkpoint(path);
    auto options = base;
    options.checkpoint_path = path;
    options.checkpoint_every_n_targets = every;
    timer.reset();
    run_campaign(options);
    const double ms = timer.elapsed_ms();
    std::printf("  every=%-5zu %8.1f ms (%+.0f%%)\n", every, ms,
                plain_ms > 0.0 ? 100.0 * (ms - plain_ms) / plain_ms : 0.0);
    rows.begin_row()
        .field("experiment", "checkpoint_overhead")
        .field("every_n_targets", static_cast<std::int64_t>(every))
        .field("wall_ms", ms)
        .field("plain_ms", plain_ms);
  }

  scan::remove_checkpoint(path);
  auto checkpointed_options = base;
  checkpointed_options.checkpoint_path = path;
  checkpointed_options.checkpoint_every_n_targets = 256;
  timer.reset();
  const auto checkpointed = run_campaign(checkpointed_options);
  const double checkpointed_ms = timer.elapsed_ms();

  // Kill after one boundary per shard, capture the artifact, then resume.
  auto killed_options = checkpointed_options;
  killed_options.abort_after_checkpoints = 1;
  timer.reset();
  const auto killed = run_campaign(killed_options);
  const double killed_ms = timer.elapsed_ms();
  const std::size_t checkpoint_bytes = file_size(path);

  timer.reset();
  const auto resumed = run_campaign(checkpointed_options);
  const double resume_ms = timer.elapsed_ms();

  const bool identical =
      resumed.scan1.records.size() == plain.scan1.records.size() &&
      resumed.scan2.records.size() == plain.scan2.records.size() &&
      resumed.scan1.end_time == plain.scan1.end_time &&
      resumed.scan2.end_time == plain.scan2.end_time;

  std::printf("\nCheckpoint/resume (%zu targets, %zu shards):\n",
              plain.scan1.targets_probed, base.shards);
  std::printf("  plain campaign        %8.1f ms\n", plain_ms);
  std::printf("  checkpointed campaign %8.1f ms (overhead %+.1f%%)\n",
              checkpointed_ms,
              plain_ms > 0.0
                  ? 100.0 * (checkpointed_ms - plain_ms) / plain_ms
                  : 0.0);
  std::printf("  killed-at-boundary    %8.1f ms (artifact %zu bytes)\n",
              killed_ms, checkpoint_bytes);
  std::printf("  resume-to-completion  %8.1f ms\n", resume_ms);
  std::printf("  resumed == uninterrupted: %s\n", identical ? "yes" : "NO");

  rows.begin_row()
      .field("experiment", "checkpoint_resume")
      .field("plain_ms", plain_ms)
      .field("checkpointed_ms", checkpointed_ms)
      .field("killed_ms", killed_ms)
      .field("resume_ms", resume_ms)
      .field("checkpoint_bytes", static_cast<std::int64_t>(checkpoint_bytes))
      .field("interrupted", static_cast<std::int64_t>(killed.interrupted))
      .field("resume_identical", static_cast<std::int64_t>(identical));

  // ---- 2. adaptive backoff under rate policing ---------------------------
  std::printf("\nAdaptive backoff vs device-side rate policing:\n");
  for (const bool adaptive : {false, true}) {
    auto options = base_options();
    options.fabric.device_rate_limit_pps = 1;
    options.pacer.adaptive = adaptive;
    options.pacer.window_probes = 32;
    options.pacer.min_rate_pps = 50.0;
    const auto pair = run_campaign(options);
    const std::size_t backoffs =
        pair.scan1.pacer_backoffs + pair.scan2.pacer_backoffs;
    std::printf(
        "  pacer=%-3s responsive %6zu+%6zu  rate-limited drops %8zu  "
        "backoffs %4zu\n",
        adaptive ? "on" : "off", pair.scan1.responsive(),
        pair.scan2.responsive(), pair.fabric_stats.probes_rate_limited,
        backoffs);
    rows.begin_row()
        .field("experiment", "adaptive_backoff")
        .field("adaptive", static_cast<std::int64_t>(adaptive))
        .field("responsive_scan1",
               static_cast<std::int64_t>(pair.scan1.responsive()))
        .field("responsive_scan2",
               static_cast<std::int64_t>(pair.scan2.responsive()))
        .field("rate_limited",
               static_cast<std::int64_t>(pair.fabric_stats.probes_rate_limited))
        .field("backoffs", static_cast<std::int64_t>(backoffs));
  }

  // ---- 3. hostile fabric sweep -------------------------------------------
  std::printf("\nHostile fabric (response corruption sweep):\n");
  for (const double rate : {0.0, 0.1, 0.3, 0.5}) {
    auto options = base_options();
    options.fabric.faults.probe_corrupt_rate = rate / 5.0;
    options.fabric.faults.response_corrupt_rate = rate;
    const auto pair = run_campaign(options);
    const std::size_t undecodable =
        pair.scan1.undecodable_responses + pair.scan2.undecodable_responses;
    std::printf(
        "  corrupt=%.2f responsive %6zu+%6zu  corrupted %6zu/%6zu  "
        "undecodable %6zu\n",
        rate, pair.scan1.responsive(), pair.scan2.responsive(),
        pair.fabric_stats.probes_corrupted,
        pair.fabric_stats.responses_corrupted, undecodable);
    rows.begin_row()
        .field("experiment", "hostile_fabric")
        .field("corrupt_rate", rate)
        .field("responsive_scan1",
               static_cast<std::int64_t>(pair.scan1.responsive()))
        .field("responsive_scan2",
               static_cast<std::int64_t>(pair.scan2.responsive()))
        .field("probes_corrupted",
               static_cast<std::int64_t>(pair.fabric_stats.probes_corrupted))
        .field("responses_corrupted",
               static_cast<std::int64_t>(
                   pair.fabric_stats.responses_corrupted))
        .field("undecodable", static_cast<std::int64_t>(undecodable));
  }

  rows.write("BENCH_robustness.json");
  std::printf("\nWrote BENCH_robustness.json\n");
  return identical ? 0 : 1;
}
