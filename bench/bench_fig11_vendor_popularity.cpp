// Figure 11: vendor popularity across ALL de-aliased devices, stacked by
// IPv4-only / IPv6-only / dual-stack. Paper: 4.62M devices; Net-SNMP and
// Cisco lead (~0.9-1M each), then Broadcom/Thomson (~580k), Netgear
// (~420k), Huawei (~220k); top-10 vendors cover > 80%.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 11", "vendor popularity (all devices)");
  const auto& r = benchx::full_pipeline();

  const auto popularity = core::vendor_popularity(r.devices,
                                                  /*routers_only=*/false);
  std::size_t total = 0, top10 = 0;
  for (const auto& entry : popularity) total += entry.total();

  util::TablePrinter table(
      {"Vendor", "Alias sets", "IPv4 only", "IPv6 only", "Dual-stack", "Share"});
  for (std::size_t i = 0; i < popularity.size() && i < 12; ++i) {
    const auto& entry = popularity[i];
    if (i < 10) top10 += entry.total();
    table.add_row({entry.vendor, util::fmt_count(entry.total()),
                   util::fmt_count(entry.v4_only),
                   util::fmt_count(entry.v6_only), util::fmt_count(entry.dual),
                   util::fmt_percent(static_cast<double>(entry.total()) /
                                     static_cast<double>(total))});
  }
  table.print(std::cout);
  std::printf("\nTotal de-aliased devices: %zu (paper: 4,617,690 at 1:1 scale)\n",
              total);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("top-10 vendors' share", ">80%",
                          util::fmt_percent(static_cast<double>(top10) /
                                            static_cast<double>(total)));
  const auto find = [&](const std::string& vendor) -> const auto* {
    for (const auto& e : popularity)
      if (e.vendor == vendor) return &e;
    return static_cast<const core::VendorPopularity*>(nullptr);
  };
  const auto* netsnmp = find("Net-SNMP");
  const auto* cisco = find("Cisco");
  const auto* huawei = find("Huawei");
  if (netsnmp && cisco)
    benchx::print_paper_row("Net-SNMP ~ Cisco (both ~0.9-1M)", "ratio ~1.05",
                            util::fmt_double(
                                static_cast<double>(netsnmp->total()) /
                                    static_cast<double>(cisco->total()),
                                2));
  if (cisco && huawei)
    benchx::print_paper_row("Cisco / Huawei devices", "~4.2x",
                            util::fmt_double(
                                static_cast<double>(cisco->total()) /
                                    static_cast<double>(huawei->total()),
                                1) + "x");
  benchx::print_paper_row("majority of devices IPv4-only", "yes", "see table");
  return 0;
}
