// Microbenchmarks (google-benchmark): the wire codec hot path. An
// Internet-scale campaign encodes/decodes tens of millions of messages;
// these benches keep that path honest.
#include <benchmark/benchmark.h>

#include "net/registry.hpp"
#include "snmp/usm.hpp"
#include "snmp/message.hpp"
#include "util/rng.hpp"
#include "wire/probe_template.hpp"
#include "wire/report_codec.hpp"

using namespace snmpv3fp;

namespace {

void BM_EncodeDiscoveryRequest(benchmark::State& state) {
  std::int32_t id = 4242;
  for (auto _ : state) {
    const auto message = snmp::make_discovery_request(id, id + 1);
    benchmark::DoNotOptimize(message.encode());
    id = (id + 1) % 30000 + 200;
  }
}
BENCHMARK(BM_EncodeDiscoveryRequest);

// Fast-path counterpart of BM_EncodeDiscoveryRequest: stamping ids into
// the precomputed template (bench_wire has the allocation accounting).
void BM_StampDiscoveryRequest(benchmark::State& state) {
  const wire::ProbeTemplate tmpl;
  util::Bytes buffer;
  std::int32_t id = 4242;
  for (auto _ : state) {
    tmpl.stamp(id, id + 1, buffer);
    benchmark::DoNotOptimize(buffer.data());
    id = (id + 1) % 30000 + 200;
  }
}
BENCHMARK(BM_StampDiscoveryRequest);

void BM_DecodeDiscoveryRequest(benchmark::State& state) {
  const auto wire = snmp::make_discovery_request(4242, 4243).encode();
  for (auto _ : state) {
    auto message = snmp::V3Message::decode(wire);
    benchmark::DoNotOptimize(message);
  }
}
BENCHMARK(BM_DecodeDiscoveryRequest);

void BM_EncodeReport(benchmark::State& state) {
  const auto request = snmp::make_discovery_request(4242, 4243);
  const auto engine_id = snmp::EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x31db80));
  for (auto _ : state) {
    const auto report =
        snmp::make_discovery_report(request, engine_id, 148, 10043812, 7);
    benchmark::DoNotOptimize(report.encode());
  }
}
BENCHMARK(BM_EncodeReport);

void BM_DecodeReport(benchmark::State& state) {
  const auto request = snmp::make_discovery_request(4242, 4243);
  const auto engine_id = snmp::EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x31db80));
  const auto wire =
      snmp::make_discovery_report(request, engine_id, 148, 10043812, 7)
          .encode();
  for (auto _ : state) {
    auto message = snmp::V3Message::decode(wire);
    benchmark::DoNotOptimize(message);
  }
}
BENCHMARK(BM_DecodeReport);

// Fast-path counterpart of BM_EncodeReport: the direct single-buffer
// REPORT writer the simulated agents use.
void BM_EncodeReportDirect(benchmark::State& state) {
  const auto engine_id = snmp::EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x31db80));
  util::Bytes buffer;
  for (auto _ : state) {
    wire::encode_report_into(buffer, 4242, 4243, engine_id.raw(), 148,
                             10043812, 7,
                             snmp::kOidUsmStatsUnknownEngineIds);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_EncodeReportDirect);

// Fast-path counterpart of BM_DecodeReport: the single-pass scanner the
// prober's drain loop runs on every response.
void BM_FastParseReport(benchmark::State& state) {
  const auto request = snmp::make_discovery_request(4242, 4243);
  const auto engine_id = snmp::EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x31db80));
  const auto wire_bytes =
      snmp::make_discovery_report(request, engine_id, 148, 10043812, 7)
          .encode();
  for (auto _ : state) {
    wire::V3Fields fields;
    benchmark::DoNotOptimize(wire::parse_v3_fast(wire_bytes, fields));
    benchmark::DoNotOptimize(fields.engine_boots);
  }
}
BENCHMARK(BM_FastParseReport);

void BM_ClassifyEngineId(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<snmp::EngineId> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(snmp::EngineId::make_mac(
        net::kPenCisco,
        net::MacAddress::from_oui(0x00000c,
                                  static_cast<std::uint32_t>(rng.next()) &
                                      0xffffff)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ids[i % ids.size()].format());
    benchmark::DoNotOptimize(ids[i % ids.size()].mac());
    ++i;
  }
}
BENCHMARK(BM_ClassifyEngineId);

void BM_OuiLookup(benchmark::State& state) {
  const auto& registry = net::OuiRegistry::embedded();
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.vendor_of(static_cast<std::uint32_t>(rng.next()) & 0xffffff));
  }
}
BENCHMARK(BM_OuiLookup);

void BM_PasswordToKeySha1(benchmark::State& state) {
  // The 1 MiB key-stretch of RFC 3414 A.2 — the rate limiter of the
  // offline brute-force attack (examples/engineid_bruteforce.cpp).
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snmp::password_to_key(
        snmp::AuthProtocol::kHmacSha1_96, "candidate" + std::to_string(i++)));
  }
  state.SetLabel("candidates/sec gate for password cracking");
}
BENCHMARK(BM_PasswordToKeySha1);

void BM_VerifyAuthentication(benchmark::State& state) {
  const auto engine_id = snmp::EngineId::make_mac(
      net::kPenCisco, net::MacAddress::from_oui(0x00000c, 0x31db80));
  const auto key = snmp::derive_localized_key(snmp::AuthProtocol::kHmacSha1_96,
                                              "pw", engine_id);
  auto message = snmp::make_discovery_request(1, 2);
  message.usm.authoritative_engine_id = engine_id;
  message.usm.user_name = "netops";
  const auto signed_message =
      snmp::authenticate(snmp::AuthProtocol::kHmacSha1_96, key, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snmp::verify_authentication(
        snmp::AuthProtocol::kHmacSha1_96, key, signed_message));
  }
}
BENCHMARK(BM_VerifyAuthentication);

}  // namespace

BENCHMARK_MAIN();
