// Figure 9: ECDF of the number of IP addresses per alias set, for IPv4,
// IPv6 and router alias sets. Paper: router alias sets are much larger —
// SNMPv3 runs on routers with many addressed interfaces.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 9", "IP addresses per alias set");
  const auto& r = benchx::full_pipeline();

  const auto v4 = core::alias_set_sizes(r.resolution, net::Family::kIpv4);
  const auto v6 = core::alias_set_sizes(r.resolution, net::Family::kIpv6);
  const auto routers =
      core::alias_set_sizes(r.resolution, std::nullopt, &r.router_addresses);

  const std::vector<double> xs = {1, 2, 5, 10, 50, 100, 1000};
  benchx::print_ecdf_at("IPv4 alias sets", v4, xs);
  benchx::print_ecdf_at("IPv6 alias sets", v6, xs);
  benchx::print_ecdf_at("Router alias sets", routers, xs);

  const auto breakdown = core::breakdown_by_stack(r.resolution);
  std::cout << "\nDual-stack merge (paper §5.1):\n";
  std::printf("  IPv4-only sets: %zu (non-singleton %zu, IPs %zu)\n",
              breakdown.v4_only_sets, breakdown.v4_only_non_singleton,
              breakdown.v4_only_ips_nonsingleton);
  std::printf("  IPv6-only sets: %zu (non-singleton %zu, IPs %zu)\n",
              breakdown.v6_only_sets, breakdown.v6_only_non_singleton,
              breakdown.v6_only_ips_nonsingleton);
  std::printf("  dual-stack sets: %zu (IPs %zu, %.1f per set)\n",
              breakdown.dual_sets, breakdown.dual_ips,
              breakdown.dual_sets == 0
                  ? 0.0
                  : static_cast<double>(breakdown.dual_ips) /
                        static_cast<double>(breakdown.dual_sets));

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("router sets larger than all-device sets",
                          "yes (fig 9)",
                          util::fmt_double(routers.mean(), 1) + " vs " +
                              util::fmt_double(v4.mean(), 1) + " mean IPs");
  benchx::print_paper_row("dual-stack sets have the most addresses",
                          "45.4 per set",
                          util::fmt_double(
                              breakdown.dual_sets == 0
                                  ? 0.0
                                  : static_cast<double>(breakdown.dual_ips) /
                                        static_cast<double>(breakdown.dual_sets),
                              1));
  return 0;
}
