// bench_net: batched kernel UDP I/O vs the per-datagram loop
// (ROADMAP "Line-rate real-socket campaign engine").
//
// Measures the send hot path of net::BatchedUdpEngine over loopback — the
// same acquire/stamp/commit sequence the prober's zero-copy fast path
// runs — in two configurations:
//   per_datagram   BatchMode::kPerDatagram (one sendto per probe)
//   batched        BatchMode::kAuto at batch 64 (sendmmsg + UDP GSO)
//
// Each probe is ProbeTemplate-stamped directly into a preallocated mmsg
// frame, so the steady-state loop must allocate exactly nothing: the
// allocation counter (global operator new/delete override, same idiom as
// bench_wire) runs over the measured loop and gates on zero.
//
// Usage: bench_net [--quick] [--gate]
// With --gate, exits non-zero when (scripts/check.sh runs this):
//   - the batched engine really batches (sendmmsg available) but fails to
//     reach >= 2x the per-datagram probes-per-second,
//   - the steady-state send loop allocates,
//   - BENCH_net.json fails its own schema check.
// When the sandbox denies sockets entirely the bench prints SKIP and
// exits 0 — no wire, nothing to gate.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "common.hpp"
#include "net/batched_udp.hpp"
#include "net/udp_socket.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"
#include "wire/probe_template.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator-new path ticks one relaxed atomic.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace snmpv3fp;

namespace {

struct SendRun {
  double pps = 0;
  double ns_per_probe = 0;
  std::uint64_t allocations = 0;  // over the measured loop only
  net::NetIoStats stats;          // engine counters after the run
  bool batching = false;          // sendmmsg actually in use
  bool gso = false;               // GSO coalescing actually in use
};

// Stamps `count` template probes into engine frames addressed at `sink`
// and times the whole drain-to-kernel. Rotating request ids keep the
// stamp honest (no constant-fold); equal lengths and one destination are
// exactly the census shape — every probe is the same template.
SendRun run_send_loop(net::BatchedUdpEngine& engine,
                      const net::Endpoint& sink,
                      const wire::ProbeTemplate& tmpl, std::int64_t count,
                      int repeats) {
  const std::size_t len = tmpl.size();
  const auto loop = [&] {
    for (std::int64_t i = 0; i < count; ++i) {
      const auto id = static_cast<std::int32_t>(
          wire::kMinTwoByteId +
          (i * 7919) % (wire::kMaxTwoByteId - wire::kMinTwoByteId + 1));
      auto frame = engine.acquire_send_frame(len);
      tmpl.stamp_into(id, id, frame.first(len));
      engine.commit_send_frame({}, sink, len, engine.now());
    }
    engine.flush();
  };

  loop();  // warm-up: fault in frames, learn GSO availability
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  loop();
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  double best_ms = 0;
  for (int r = 0; r < repeats; ++r) {
    benchx::WallTimer timer;
    loop();
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }

  SendRun run;
  run.ns_per_probe = best_ms * 1e6 / static_cast<double>(count);
  run.pps = static_cast<double>(count) / (best_ms / 1e3);
  run.allocations = allocs_after - allocs_before;
  run.stats = engine.stats();
  run.batching = engine.batching();
  run.gso = engine.gso();
  return run;
}

bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("build_flags"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().size() < 2) return false;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    for (const char* key :
         {"mode", "pps", "ns_per_probe", "allocs_per_probe", "sendmmsg_calls",
          "sendto_calls", "gso_batches", "datagrams_sent"})
      if (!row.find(key)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  benchx::print_header("net", "Batched kernel UDP I/O (sendmmsg + GSO)");

  const std::int64_t count = quick ? 20000 : 200000;
  const int repeats = quick ? 3 : 5;

  const wire::ProbeTemplate tmpl;
  if (!tmpl.valid()) {
    std::fprintf(stderr, "FAIL: probe template failed self-validation\n");
    return 1;
  }

  // Sink socket: a bound loopback endpoint that never reads. Loopback
  // sends complete regardless (overflow drops at the receiver), so the
  // bench times the send path alone.
  auto sink_socket = net::UdpSocket::open(net::Family::kIpv4);
  if (!sink_socket.ok()) {
    std::printf("SKIP: sockets unavailable (%s)\n",
                sink_socket.error().c_str());
    return 0;
  }
  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  if (!sink_socket.value().bind_to(loopback).ok()) {
    std::printf("SKIP: loopback bind denied\n");
    return 0;
  }
  const auto sink = sink_socket.value().local_endpoint();
  if (!sink.ok()) {
    std::printf("SKIP: local_endpoint failed (%s)\n", sink.error().c_str());
    return 0;
  }

  const auto make_engine = [&](net::BatchMode mode) {
    net::EngineConfig config;
    config.clock = net::EngineClock::kWall;
    config.batch = mode;
    config.batch_size = 64;
    config.frame_bytes = 256;
    config.flow_window = 0;  // raw mode: nothing answers
    return net::BatchedUdpEngine::open(config);
  };

  auto per_datagram_engine = make_engine(net::BatchMode::kPerDatagram);
  auto batched_engine = make_engine(net::BatchMode::kAuto);
  if (!per_datagram_engine.ok() || !batched_engine.ok()) {
    std::printf("SKIP: engine open failed (%s)\n",
                (per_datagram_engine.ok() ? batched_engine.error()
                                          : per_datagram_engine.error())
                    .c_str());
    return 0;
  }

  const SendRun per_datagram = run_send_loop(
      *per_datagram_engine.value(), sink.value(), tmpl, count, repeats);
  const SendRun batched = run_send_loop(*batched_engine.value(), sink.value(),
                                        tmpl, count, repeats);

  const double speedup =
      per_datagram.pps > 0 ? batched.pps / per_datagram.pps : 0;
  const double allocs_per_probe =
      static_cast<double>(batched.allocations) / static_cast<double>(count);

  util::TablePrinter table({"Mode", "pps", "ns/probe", "allocs/probe",
                            "sendmmsg", "sendto", "GSO batches"});
  const auto add_row = [&](const char* mode, const SendRun& run) {
    char pps[32], ns[32], allocs[32];
    std::snprintf(pps, sizeof pps, "%.0f", run.pps);
    std::snprintf(ns, sizeof ns, "%.1f", run.ns_per_probe);
    std::snprintf(allocs, sizeof allocs, "%.4f",
                  static_cast<double>(run.allocations) /
                      static_cast<double>(count));
    table.add_row({mode, pps, ns, allocs,
                   std::to_string(run.stats.sendmmsg_calls),
                   std::to_string(run.stats.sendto_calls),
                   std::to_string(run.stats.gso_batches)});
  };
  add_row("per_datagram", per_datagram);
  add_row("batched", batched);
  std::printf("%s\n", table.render().c_str());
  std::printf("batched/per_datagram: %.2fx  (batching=%s, gso=%s)\n", speedup,
              batched.batching ? "yes" : "no", batched.gso ? "yes" : "no");

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, /*seed=*/1, /*threads=*/1,
                             /*scan_shards=*/0);
  rows.meta("quick", std::int64_t{quick});
  rows.meta("probes", count);
  rows.meta("batch_size", std::int64_t{64});
  rows.meta("probe_bytes", static_cast<std::int64_t>(tmpl.size()));
  rows.meta("batching", std::int64_t{batched.batching});
  rows.meta("gso", std::int64_t{batched.gso});
  rows.meta("speedup", speedup);
  const auto add_json = [&](const char* mode, const SendRun& run) {
    rows.begin_row()
        .field("mode", mode)
        .field("pps", run.pps)
        .field("ns_per_probe", run.ns_per_probe)
        .field("allocs_per_probe", static_cast<double>(run.allocations) /
                                       static_cast<double>(count))
        .field("sendmmsg_calls",
               static_cast<std::int64_t>(run.stats.sendmmsg_calls))
        .field("sendto_calls",
               static_cast<std::int64_t>(run.stats.sendto_calls))
        .field("gso_batches",
               static_cast<std::int64_t>(run.stats.gso_batches))
        .field("datagrams_sent",
               static_cast<std::int64_t>(run.stats.datagrams_sent));
  };
  add_json("per_datagram", per_datagram);
  add_json("batched", batched);

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr, "FAIL: BENCH_net.json failed its schema check\n");
    return 1;
  }
  rows.write("BENCH_net.json");
  std::printf("Wrote BENCH_net.json\n");

  if (gate) {
    if (allocs_per_probe != 0.0) {
      std::fprintf(stderr,
                   "FAIL: batched send loop allocated (%.4f allocs/probe) — "
                   "the stamp-into-frame path must be allocation-free\n",
                   allocs_per_probe);
      return 1;
    }
    if (!batched.batching) {
      // No sendmmsg on this kernel: the 2x claim is about batching, so
      // there is nothing to gate — but say so visibly.
      std::printf("SKIP: sendmmsg unavailable, speedup gate not applicable\n");
      return 0;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: batched send %.2fx per-datagram (gate: >= 2.0x)\n",
                   speedup);
      return 1;
    }
    std::printf("GATE OK: %.2fx >= 2.0x, zero allocations per probe\n",
                speedup);
  }
  return 0;
}
