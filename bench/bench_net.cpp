// bench_net: batched kernel UDP I/O vs the per-datagram loop
// (ROADMAP "Line-rate real-socket campaign engine").
//
// Measures the send hot path of net::BatchedUdpEngine over loopback — the
// same acquire/stamp/commit sequence the prober's zero-copy fast path
// runs — in two configurations:
//   per_datagram   BatchMode::kPerDatagram (one sendto per probe)
//   batched        BatchMode::kAuto at batch 64 (sendmmsg + UDP GSO)
//
// And the receive hot path, burst-then-drain over loopback:
//   recv_mmsg      BatchedUdpEngine::receive_view (recvmmsg batches)
//   recv_ring      PacketRingReceiver::next (TPACKET_V3 mmap walk)
// The traffic generator sends without GSO so both paths see the same
// per-datagram wire framing (a tap cannot split a GSO super-datagram).
// The ring drain borrows payload views straight from the mapped blocks,
// so it too must allocate exactly nothing.
//
// Each probe is ProbeTemplate-stamped directly into a preallocated mmsg
// frame, so the steady-state loop must allocate exactly nothing: the
// allocation counter (global operator new/delete override, same idiom as
// bench_wire) runs over the measured loop and gates on zero.
//
// Usage: bench_net [--quick] [--gate]
// With --gate, exits non-zero when (scripts/check.sh runs this):
//   - the batched engine really batches (sendmmsg available) but fails to
//     reach >= 2x the per-datagram probes-per-second,
//   - the steady-state send loop allocates,
//   - the ring is available (CAP_NET_RAW) but its drain fails to reach
//     >= 2x the recvmmsg frames-per-second, or allocates per frame,
//   - BENCH_net.json fails its own schema check.
// When the sandbox denies sockets entirely the bench prints SKIP and
// exits 0 — no wire, nothing to gate. Without CAP_NET_RAW the rx section
// prints a visible SKIP and only the send gates apply.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>

#include "common.hpp"
#include "net/batched_udp.hpp"
#include "net/packet_ring.hpp"
#include "net/udp_socket.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"
#include "wire/probe_template.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator-new path ticks one relaxed atomic.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace snmpv3fp;

namespace {

struct SendRun {
  double pps = 0;
  double ns_per_probe = 0;
  std::uint64_t allocations = 0;  // over the measured loop only
  net::NetIoStats stats;          // engine counters after the run
  bool batching = false;          // sendmmsg actually in use
  bool gso = false;               // GSO coalescing actually in use
};

// Stamps `count` template probes into engine frames addressed at `sink`
// and times the whole drain-to-kernel. Rotating request ids keep the
// stamp honest (no constant-fold); equal lengths and one destination are
// exactly the census shape — every probe is the same template.
SendRun run_send_loop(net::BatchedUdpEngine& engine,
                      const net::Endpoint& sink,
                      const wire::ProbeTemplate& tmpl, std::int64_t count,
                      int repeats) {
  const std::size_t len = tmpl.size();
  const auto loop = [&] {
    for (std::int64_t i = 0; i < count; ++i) {
      const auto id = static_cast<std::int32_t>(
          wire::kMinTwoByteId +
          (i * 7919) % (wire::kMaxTwoByteId - wire::kMinTwoByteId + 1));
      auto frame = engine.acquire_send_frame(len);
      tmpl.stamp_into(id, id, frame.first(len));
      engine.commit_send_frame({}, sink, len, engine.now());
    }
    engine.flush();
  };

  loop();  // warm-up: fault in frames, learn GSO availability
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  loop();
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  double best_ms = 0;
  for (int r = 0; r < repeats; ++r) {
    benchx::WallTimer timer;
    loop();
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }

  SendRun run;
  run.ns_per_probe = best_ms * 1e6 / static_cast<double>(count);
  run.pps = static_cast<double>(count) / (best_ms / 1e3);
  run.allocations = allocs_after - allocs_before;
  run.stats = engine.stats();
  run.batching = engine.batching();
  run.gso = engine.gso();
  return run;
}

struct RecvRun {
  double pps = 0;
  double ns_per_frame = 0;
  std::uint64_t allocations = 0;  // over the timed drain loops only
  std::uint64_t frames = 0;       // frames drained across every round
  net::NetIoStats sender_stats;   // traffic generator counters
};

// Stamps `burst` template probes at `dest` and flushes. The generator
// engine runs with gso=false: a GSO super-datagram is never segmented on
// loopback, so the AF_PACKET tap would count one merged frame where
// recvmmsg counts many — per-datagram framing keeps both receive paths
// counting identical work.
void send_burst(net::BatchedUdpEngine& tx, const net::Endpoint& dest,
                const wire::ProbeTemplate& tmpl, std::int64_t burst) {
  const std::size_t len = tmpl.size();
  for (std::int64_t i = 0; i < burst; ++i) {
    const auto id = static_cast<std::int32_t>(
        wire::kMinTwoByteId +
        (i * 7919) % (wire::kMaxTwoByteId - wire::kMinTwoByteId + 1));
    auto frame = tx.acquire_send_frame(len);
    tmpl.stamp_into(id, id, frame.first(len));
    tx.commit_send_frame({}, dest, len, tx.now());
  }
  tx.flush();
}

// Loopback delivery rides the softirq backlog and ring blocks retire on
// a 4 ms timeout; this wait puts every burst frame where the timed drain
// can see it, so the drain measures the receive walk and nothing else.
void settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
}

// recvmmsg baseline: burst, settle, then a timed drain of
// receive_view() until empty. Repeated `rounds` times; pps is frames
// over summed drain time (send + settle excluded).
RecvRun run_mmsg_recv(net::BatchedUdpEngine& tx, net::BatchedUdpEngine& rx,
                      const wire::ProbeTemplate& tmpl, std::int64_t burst,
                      int rounds) {
  // Empty refills arm the engine's rx backoff (it suppresses the next 32
  // polls so send-heavy loops don't pay a syscall per commit); a drain
  // must spin past that window before concluding the queue is empty. The
  // suppressed calls are branch-cheap, so they cost the timing nothing.
  const auto drain = [&rx] {
    std::uint64_t n = 0;
    std::size_t idle = 0;
    while (idle < 40) {
      if (rx.receive_view()) {
        ++n;
        idle = 0;
      } else {
        ++idle;
      }
    }
    return n;
  };

  const net::Endpoint dest = rx.local_endpoint();
  send_burst(tx, dest, tmpl, burst);  // warm-up: fault in rx pools
  settle();
  drain();

  RecvRun run;
  double total_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    send_burst(tx, dest, tmpl, burst);
    settle();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    benchx::WallTimer timer;
    const std::uint64_t n = drain();
    total_ms += timer.elapsed_ms();
    run.allocations +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    run.frames += n;
  }
  if (total_ms > 0 && run.frames > 0) {
    run.pps = static_cast<double>(run.frames) / (total_ms / 1e3);
    run.ns_per_frame = total_ms * 1e6 / static_cast<double>(run.frames);
  }
  run.sender_stats = tx.stats();
  return run;
}

// Ring path: identical burst/settle cadence, drained through
// PacketRingReceiver::next(0) — a pure mmap walk, zero syscalls until
// the empty poll. Only frames for `port` count (the ring sees all
// loopback traffic); outgoing copies are skipped inside next().
RecvRun run_ring_recv(net::BatchedUdpEngine& tx,
                      net::PacketRingReceiver& ring, const net::Endpoint& dest,
                      const wire::ProbeTemplate& tmpl, std::int64_t burst,
                      int rounds) {
  send_burst(tx, dest, tmpl, burst);
  settle();
  while (ring.next(0)) {
  }

  RecvRun run;
  double total_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    send_burst(tx, dest, tmpl, burst);
    settle();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    benchx::WallTimer timer;
    std::uint64_t n = 0;
    while (const auto frame = ring.next(0)) {
      if (frame->dst_port == dest.port) ++n;
    }
    total_ms += timer.elapsed_ms();
    run.allocations +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    run.frames += n;
  }
  if (total_ms > 0 && run.frames > 0) {
    run.pps = static_cast<double>(run.frames) / (total_ms / 1e3);
    run.ns_per_frame = total_ms * 1e6 / static_cast<double>(run.frames);
  }
  run.sender_stats = tx.stats();
  return run;
}

bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("build_flags"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().size() < 2) return false;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    for (const char* key :
         {"mode", "pps", "ns_per_probe", "allocs_per_probe", "sendmmsg_calls",
          "sendto_calls", "gso_batches", "datagrams_sent"})
      if (!row.find(key)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  benchx::print_header("net", "Batched kernel UDP I/O (sendmmsg + GSO)");

  const std::int64_t count = quick ? 20000 : 200000;
  const int repeats = quick ? 3 : 5;

  const wire::ProbeTemplate tmpl;
  if (!tmpl.valid()) {
    std::fprintf(stderr, "FAIL: probe template failed self-validation\n");
    return 1;
  }

  // Sink socket: a bound loopback endpoint that never reads. Loopback
  // sends complete regardless (overflow drops at the receiver), so the
  // bench times the send path alone.
  auto sink_socket = net::UdpSocket::open(net::Family::kIpv4);
  if (!sink_socket.ok()) {
    std::printf("SKIP: sockets unavailable (%s)\n",
                sink_socket.error().c_str());
    return 0;
  }
  const net::Endpoint loopback{net::IpAddress(net::Ipv4(127, 0, 0, 1)), 0};
  if (!sink_socket.value().bind_to(loopback).ok()) {
    std::printf("SKIP: loopback bind denied\n");
    return 0;
  }
  const auto sink = sink_socket.value().local_endpoint();
  if (!sink.ok()) {
    std::printf("SKIP: local_endpoint failed (%s)\n", sink.error().c_str());
    return 0;
  }

  const auto make_engine = [&](net::BatchMode mode) {
    net::EngineConfig config;
    config.clock = net::EngineClock::kWall;
    config.batch = mode;
    config.batch_size = 64;
    config.frame_bytes = 256;
    config.flow_window = 0;  // raw mode: nothing answers
    return net::BatchedUdpEngine::open(config);
  };

  auto per_datagram_engine = make_engine(net::BatchMode::kPerDatagram);
  auto batched_engine = make_engine(net::BatchMode::kAuto);
  if (!per_datagram_engine.ok() || !batched_engine.ok()) {
    std::printf("SKIP: engine open failed (%s)\n",
                (per_datagram_engine.ok() ? batched_engine.error()
                                          : per_datagram_engine.error())
                    .c_str());
    return 0;
  }

  const SendRun per_datagram = run_send_loop(
      *per_datagram_engine.value(), sink.value(), tmpl, count, repeats);
  const SendRun batched = run_send_loop(*batched_engine.value(), sink.value(),
                                        tmpl, count, repeats);

  const double speedup =
      per_datagram.pps > 0 ? batched.pps / per_datagram.pps : 0;
  const double allocs_per_probe =
      static_cast<double>(batched.allocations) / static_cast<double>(count);

  util::TablePrinter table({"Mode", "pps", "ns/probe", "allocs/probe",
                            "sendmmsg", "sendto", "GSO batches"});
  const auto add_row = [&](const char* mode, const SendRun& run) {
    char pps[32], ns[32], allocs[32];
    std::snprintf(pps, sizeof pps, "%.0f", run.pps);
    std::snprintf(ns, sizeof ns, "%.1f", run.ns_per_probe);
    std::snprintf(allocs, sizeof allocs, "%.4f",
                  static_cast<double>(run.allocations) /
                      static_cast<double>(count));
    table.add_row({mode, pps, ns, allocs,
                   std::to_string(run.stats.sendmmsg_calls),
                   std::to_string(run.stats.sendto_calls),
                   std::to_string(run.stats.gso_batches)});
  };
  add_row("per_datagram", per_datagram);
  add_row("batched", batched);
  std::printf("%s\n", table.render().c_str());
  std::printf("batched/per_datagram: %.2fx  (batching=%s, gso=%s)\n", speedup,
              batched.batching ? "yes" : "no", batched.gso ? "yes" : "no");

  // -------------------------------------------------------------------------
  // Receive path: recvmmsg drain vs TPACKET_V3 ring walk.
  // -------------------------------------------------------------------------

  const std::int64_t rx_burst = 512;
  const int rx_rounds = quick ? 4 : 16;

  const auto make_tx = [&] {
    net::EngineConfig config;
    config.clock = net::EngineClock::kWall;
    config.batch = net::BatchMode::kAuto;
    config.batch_size = 64;
    config.frame_bytes = 256;
    config.flow_window = 0;
    config.gso = false;  // per-datagram framing; see send_burst
    return net::BatchedUdpEngine::open(config);
  };

  net::EngineConfig rx_config;
  rx_config.clock = net::EngineClock::kWall;
  rx_config.batch = net::BatchMode::kAuto;
  rx_config.batch_size = 64;
  rx_config.flow_window = 0;
  rx_config.rcvbuf_bytes = 8 << 20;  // the whole burst queues before drain
  auto mmsg_rx = net::BatchedUdpEngine::open(rx_config);
  auto mmsg_tx = make_tx();
  if (!mmsg_rx.ok() || !mmsg_tx.ok()) {
    std::printf("SKIP: rx engine open failed (%s)\n",
                (mmsg_rx.ok() ? mmsg_tx.error() : mmsg_rx.error()).c_str());
    return 0;
  }
  const RecvRun recv_mmsg = run_mmsg_recv(*mmsg_tx.value(), *mmsg_rx.value(),
                                          tmpl, rx_burst, rx_rounds);

  // The ring taps traffic addressed at a bound-but-unread UDP socket:
  // the tap sits at device level, so the socket only reserves the port.
  bool ring_available = false;
  RecvRun recv_ring;
  std::string ring_error;
  net::PacketRingConfig ring_config;
  ring_config.block_count = 32;  // burst + outgoing copies fit retired
  auto ring = net::PacketRingReceiver::open(ring_config);
  auto ring_sink = net::UdpSocket::open(net::Family::kIpv4);
  auto ring_tx = make_tx();
  if (ring.ok() && ring_sink.ok() && ring_tx.ok() &&
      ring_sink.value().bind_to(loopback).ok()) {
    const auto ring_dest = ring_sink.value().local_endpoint();
    if (ring_dest.ok()) {
      ring_available = true;
      recv_ring = run_ring_recv(*ring_tx.value(), *ring.value(),
                                ring_dest.value(), tmpl, rx_burst, rx_rounds);
    }
  }
  if (!ring.ok()) ring_error = ring.error();

  const double rx_speedup =
      ring_available && recv_mmsg.pps > 0 ? recv_ring.pps / recv_mmsg.pps : 0;
  const double ring_allocs_per_frame =
      ring_available && recv_ring.frames > 0
          ? static_cast<double>(recv_ring.allocations) /
                static_cast<double>(recv_ring.frames)
          : 0;

  util::TablePrinter rx_table(
      {"Mode", "pps", "ns/frame", "allocs/frame", "frames"});
  const auto add_rx_row = [&](const char* mode, const RecvRun& run) {
    char pps[32], ns[32], allocs[32];
    std::snprintf(pps, sizeof pps, "%.0f", run.pps);
    std::snprintf(ns, sizeof ns, "%.1f", run.ns_per_frame);
    std::snprintf(allocs, sizeof allocs, "%.4f",
                  run.frames > 0 ? static_cast<double>(run.allocations) /
                                       static_cast<double>(run.frames)
                                 : 0.0);
    rx_table.add_row({mode, pps, ns, allocs, std::to_string(run.frames)});
  };
  add_rx_row("recv_mmsg", recv_mmsg);
  if (ring_available) add_rx_row("recv_ring", recv_ring);
  std::printf("%s\n", rx_table.render().c_str());
  if (ring_available)
    std::printf("ring/recvmmsg: %.2fx\n", rx_speedup);
  else
    std::printf("SKIP (no CAP_NET_RAW): ring rx bench not run (%s)\n",
                ring_error.c_str());

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, /*seed=*/1, /*threads=*/1,
                             /*scan_shards=*/0);
  rows.meta("quick", std::int64_t{quick});
  rows.meta("probes", count);
  rows.meta("batch_size", std::int64_t{64});
  rows.meta("probe_bytes", static_cast<std::int64_t>(tmpl.size()));
  rows.meta("batching", std::int64_t{batched.batching});
  rows.meta("gso", std::int64_t{batched.gso});
  rows.meta("speedup", speedup);
  rows.meta("ring_available", std::int64_t{ring_available});
  rows.meta("rx_burst", rx_burst);
  rows.meta("rx_rounds", std::int64_t{rx_rounds});
  rows.meta("rx_speedup", rx_speedup);
  const auto add_json = [&](const char* mode, const SendRun& run) {
    rows.begin_row()
        .field("mode", mode)
        .field("pps", run.pps)
        .field("ns_per_probe", run.ns_per_probe)
        .field("allocs_per_probe", static_cast<double>(run.allocations) /
                                       static_cast<double>(count))
        .field("sendmmsg_calls",
               static_cast<std::int64_t>(run.stats.sendmmsg_calls))
        .field("sendto_calls",
               static_cast<std::int64_t>(run.stats.sendto_calls))
        .field("gso_batches",
               static_cast<std::int64_t>(run.stats.gso_batches))
        .field("datagrams_sent",
               static_cast<std::int64_t>(run.stats.datagrams_sent));
  };
  add_json("per_datagram", per_datagram);
  add_json("batched", batched);
  // Receive rows share the schema; the send-side counters describe the
  // traffic generator that fed the drain.
  const auto add_recv_json = [&](const char* mode, const RecvRun& run) {
    rows.begin_row()
        .field("mode", mode)
        .field("pps", run.pps)
        .field("ns_per_probe", run.ns_per_frame)
        .field("allocs_per_probe",
               run.frames > 0 ? static_cast<double>(run.allocations) /
                                    static_cast<double>(run.frames)
                              : 0.0)
        .field("sendmmsg_calls",
               static_cast<std::int64_t>(run.sender_stats.sendmmsg_calls))
        .field("sendto_calls",
               static_cast<std::int64_t>(run.sender_stats.sendto_calls))
        .field("gso_batches",
               static_cast<std::int64_t>(run.sender_stats.gso_batches))
        .field("datagrams_sent",
               static_cast<std::int64_t>(run.sender_stats.datagrams_sent))
        .field("frames", static_cast<std::int64_t>(run.frames));
  };
  add_recv_json("recv_mmsg", recv_mmsg);
  if (ring_available) add_recv_json("recv_ring", recv_ring);

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr, "FAIL: BENCH_net.json failed its schema check\n");
    return 1;
  }
  rows.write("BENCH_net.json");
  std::printf("Wrote BENCH_net.json\n");

  if (gate) {
    if (allocs_per_probe != 0.0) {
      std::fprintf(stderr,
                   "FAIL: batched send loop allocated (%.4f allocs/probe) — "
                   "the stamp-into-frame path must be allocation-free\n",
                   allocs_per_probe);
      return 1;
    }
    if (!batched.batching) {
      // No sendmmsg on this kernel: the 2x claim is about batching, so
      // there is nothing to gate — but say so visibly.
      std::printf("SKIP: sendmmsg unavailable, speedup gate not applicable\n");
      return 0;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: batched send %.2fx per-datagram (gate: >= 2.0x)\n",
                   speedup);
      return 1;
    }
    if (ring_available) {
      if (ring_allocs_per_frame != 0.0) {
        std::fprintf(stderr,
                     "FAIL: ring drain allocated (%.4f allocs/frame) — the "
                     "borrowed-view walk must be allocation-free\n",
                     ring_allocs_per_frame);
        return 1;
      }
      if (rx_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: ring drain %.2fx recvmmsg (gate: >= 2.0x)\n",
                     rx_speedup);
        return 1;
      }
      std::printf(
          "GATE OK: send %.2fx, rx %.2fx, zero allocations on both hot "
          "paths\n",
          speedup, rx_speedup);
    } else {
      std::printf(
          "GATE OK: send %.2fx, zero allocations per probe "
          "(SKIP (no CAP_NET_RAW): rx ring gate not applicable)\n",
          speedup);
    }
  }
  return 0;
}
