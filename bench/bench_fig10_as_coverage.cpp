// Figure 10: per-AS SNMPv3 coverage of router IPv4 addresses — fraction of
// an AS's (union router dataset) IPv4 addresses that answered the scans,
// as ECDFs over ASes with >= 2/5/10/50/100 dataset IPs.
// Paper: ~16% overall coverage; <10% coverage for about a quarter of
// networks; >80% for the top decile.
#include <set>

#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 10", "SNMPv3 router coverage per AS (IPv4)");
  const auto& r = benchx::router_pipeline();

  // Union router dataset, IPv4 only (paper Table 2 union row).
  std::set<net::IpAddress> union_set;
  for (const auto* dataset : {&r.itdk_v4, &r.atlas})
    for (const auto& a : dataset->addresses)
      if (a.is_v4()) union_set.insert(a);
  const std::vector<net::IpAddress> union_addresses(union_set.begin(),
                                                    union_set.end());

  core::AddressSet responsive;
  for (const auto& record : r.v4_joined) responsive.insert(record.address);

  const auto coverage =
      core::as_coverage(union_addresses, responsive, r.as_table);

  std::size_t covered_total = 0;
  for (const auto& address : union_addresses)
    covered_total += responsive.count(address);
  std::printf("Union router IPv4 addresses: %zu, responsive: %zu (%.1f%%)\n\n",
              union_addresses.size(), covered_total,
              100.0 * static_cast<double>(covered_total) /
                  static_cast<double>(std::max<std::size_t>(
                      union_addresses.size(), 1)));

  const std::vector<double> xs = {0.0, 0.1, 0.25, 0.5, 0.8, 1.0};
  for (const std::size_t threshold : {2u, 5u, 10u, 50u, 100u}) {
    util::Ecdf ecdf;
    for (const auto& [total, cov] : coverage)
      if (total >= threshold) ecdf.add(cov);
    ecdf.finalize();
    benchx::print_ecdf_at(
        "ASes with " + std::to_string(threshold) + "+ dataset IPs", ecdf, xs);
  }

  util::Ecdf all;
  for (const auto& [total, cov] : coverage)
    if (total >= 2) all.add(cov);
  all.finalize();
  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("overall router IP coverage", "16%",
                          util::fmt_percent(
                              static_cast<double>(covered_total) /
                              static_cast<double>(std::max<std::size_t>(
                                  union_addresses.size(), 1))));
  benchx::print_paper_row("ASes with coverage < 10%", "~25%",
                          util::fmt_percent(all.fraction_at_most(0.0999)));
  benchx::print_paper_row("ASes with coverage > 80%", "~10%",
                          util::fmt_percent(1.0 - all.fraction_at_most(0.8)));
  return 0;
}
