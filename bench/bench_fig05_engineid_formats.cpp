// Figure 5: distribution of engine-ID formats for the IPv4 and IPv6 scans.
// Paper: ~60% MAC in both; v4 has 10-20% each of Octets / non-conforming /
// Net-SNMP; v6 shows >15% IPv4-format engine IDs (dual-stack hints).
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 5", "engine ID format distribution");
  const auto& r = benchx::full_pipeline();

  const auto v4 = core::engine_id_format_shares(r.v4_joined);
  const auto v6 = core::engine_id_format_shares(r.v6_joined);

  util::TablePrinter table({"Format", "IPv4 share", "IPv6 share"});
  // Keep a stable row order covering every format either family saw.
  for (const auto format :
       {snmp::EngineIdFormat::kMac, snmp::EngineIdFormat::kOctets,
        snmp::EngineIdFormat::kNonConforming, snmp::EngineIdFormat::kNetSnmp,
        snmp::EngineIdFormat::kIpv4, snmp::EngineIdFormat::kIpv6,
        snmp::EngineIdFormat::kText,
        snmp::EngineIdFormat::kEnterpriseSpecific}) {
    const std::string key{snmp::to_string(format)};
    table.add_row({key, util::fmt_percent(v4.fraction(key)),
                   util::fmt_percent(v6.fraction(key))});
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("MAC-based share (IPv4)", "~60%",
                          util::fmt_percent(v4.fraction("MAC")));
  benchx::print_paper_row("MAC-based share (IPv6)", "~60%",
                          util::fmt_percent(v6.fraction("MAC")));
  benchx::print_paper_row("IPv4-format share within IPv6 scan", ">15%",
                          util::fmt_percent(v6.fraction("IPv4")));
  return 0;
}
