// Table 2: router datasets (ITDK, RIPE Atlas, IPv6 Hitlist) — unique router
// addresses per dataset and how many of them answered the SNMPv3 scans.
#include <set>

#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Table 2", "router datasets and SNMPv3 coverage");
  const auto& r = benchx::full_pipeline();

  // Responsive = answered both scans consistently enough to be joined.
  core::AddressSet responsive;
  for (const auto& record : r.v4_joined) responsive.insert(record.address);
  for (const auto& record : r.v6_joined) responsive.insert(record.address);

  const auto count_family = [](const std::vector<net::IpAddress>& addresses,
                               net::Family family) {
    std::size_t n = 0;
    for (const auto& a : addresses) n += a.family() == family;
    return n;
  };
  const auto count_responsive = [&](const std::vector<net::IpAddress>& addrs,
                                    net::Family family) {
    std::size_t n = 0;
    for (const auto& a : addrs)
      if (a.family() == family && responsive.count(a) > 0) ++n;
    return n;
  };

  util::TablePrinter table({"Router dataset", "IPv4 addrs (SNMPv3)",
                            "IPv6 addrs (SNMPv3)"});
  const auto row = [&](const std::string& name,
                       const std::vector<net::IpAddress>& addresses) {
    table.add_row(
        {name,
         util::fmt_count(count_family(addresses, net::Family::kIpv4)) + " (" +
             util::fmt_count(count_responsive(addresses, net::Family::kIpv4)) +
             ")",
         util::fmt_count(count_family(addresses, net::Family::kIpv6)) + " (" +
             util::fmt_count(count_responsive(addresses, net::Family::kIpv6)) +
             ")"});
  };
  row("ITDK (v4 MIDAR-curated)", r.itdk_v4.addresses);
  row("ITDK (v6 Speedtrap)", r.itdk_v6.addresses);
  row("RIPE Atlas", r.atlas.addresses);
  row("IPv6 Hitlist", r.hitlist_v6);

  std::set<net::IpAddress> union_set(r.itdk_v4.addresses.begin(),
                                     r.itdk_v4.addresses.end());
  union_set.insert(r.itdk_v6.addresses.begin(), r.itdk_v6.addresses.end());
  union_set.insert(r.atlas.addresses.begin(), r.atlas.addresses.end());
  union_set.insert(r.hitlist_v6.begin(), r.hitlist_v6.end());
  std::vector<net::IpAddress> union_addrs(union_set.begin(), union_set.end());
  row("Union", union_addrs);
  table.print(std::cout);

  std::cout << "\nPaper (Table 2): ITDK v4 2.9M (447k) / Speedtrap 533k (36k); "
               "Atlas 560k (85k) v4, 260k (36k) v6; Hitlist 63.7M (54k); "
               "union 3.1M (461k) v4, 65M (78k) v6\n";

  const std::size_t v4_union = count_family(union_addrs, net::Family::kIpv4);
  const std::size_t v4_resp = count_responsive(union_addrs, net::Family::kIpv4);
  benchx::print_paper_row(
      "IPv4 union router addresses responsive", "~15%",
      util::fmt_percent(static_cast<double>(v4_resp) /
                        static_cast<double>(std::max<std::size_t>(v4_union, 1))));
  return 0;
}
