// bench_wire: the zero-allocation wire fast path vs the full codec
// (ROADMAP "Wire fast path").
//
// Measures ns/op AND allocs/op for both sides of the hot loop,
// machine-readable in BENCH_wire.json:
//   probe_encode_full    make_discovery_request(m, r).encode()
//   probe_encode_stamp   ProbeTemplate::stamp into a reused buffer
//   report_decode_full   V3Message::decode over a REPORT
//   report_decode_fast   FastReportParser over the same bytes
//   report_encode_full   make_discovery_report(...).encode()
//   report_encode_direct wire::encode_report_into into a reused buffer
//
// Allocation counts come from global operator new/delete overrides (a
// relaxed atomic tick per allocation) — the fast-path rows must report
// exactly 0 allocs/op once their reusable buffers have warmed up.
//
// Usage: bench_wire [--quick]
// Exits non-zero when (scripts/check.sh gates on all three):
//   - the emitted JSON fails its own schema check (artifact drift),
//   - any fast-path row allocates (the "zero-allocation" in the name),
//   - the fast parser rejects any payload of the clean REPORT corpus
//     (its accept set regressed; the scanner would silently fall back).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/registry.hpp"
#include "obs/json.hpp"
#include "snmp/message.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wire/probe_template.hpp"
#include "wire/report_codec.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator-new path ticks one relaxed atomic.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc wants the size rounded up to an alignment multiple.
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace snmpv3fp;

namespace {

struct Measurement {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

// Times `iterations` calls of `op(i)` (best wall time of `repeats` runs)
// and counts allocations over one run. `op` runs once before counting so
// reusable buffers warm up first — steady-state is what a census-scale
// loop sees.
template <typename Op>
Measurement measure(int repeats, std::int64_t iterations, Op&& op) {
  // Warm-up: fault in code and grow scratch buffers to their steady-state
  // capacity. The full input rotation runs once — message sizes are not
  // monotone in i (e.g. boots = i & 0xff needs an extra INTEGER byte at
  // 128..255), so only a complete pass guarantees the buffers have seen
  // the largest input before allocations start counting.
  for (std::int64_t i = 0; i < iterations; ++i) op(i);
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < iterations; ++i) op(i);
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  double best_ms = 0;
  for (int r = 0; r < repeats; ++r) {
    benchx::WallTimer timer;
    for (std::int64_t i = 0; i < iterations; ++i) op(i);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  Measurement m;
  m.ns_per_op = best_ms * 1e6 / static_cast<double>(iterations);
  m.allocs_per_op = static_cast<double>(allocs_after - allocs_before) /
                    static_cast<double>(iterations);
  return m;
}

// Keeps results observable without volatile tricks: fold a byte into a
// global sink the optimizer cannot see through.
std::uint64_t g_sink = 0;
inline void consume(std::uint64_t v) { g_sink = g_sink * 31 + v; }

// Rotating two-byte ids so the encoders never see a constant input.
inline std::int32_t rotate_id(std::int64_t i) {
  return static_cast<std::int32_t>(
      wire::kMinTwoByteId +
      (i * 7919) % (wire::kMaxTwoByteId - wire::kMinTwoByteId + 1));
}

// Fails closed on drift: scripts/check.sh relies on this exit code.
bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("build_flags"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().empty()) return false;
  std::size_t pairs = 0;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    for (const char* key :
         {"op", "baseline", "ns_per_op", "baseline_ns_per_op",
          "allocs_per_op", "baseline_allocs_per_op", "speedup"})
      if (!row.find(key)) return false;
    ++pairs;
  }
  return pairs >= 3;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  benchx::print_header("wire", "Zero-allocation wire fast path");

  const int repeats = quick ? 3 : 7;
  const std::int64_t iterations = quick ? 20000 : 200000;

  // Shared fixtures. The decode corpus covers the engine-ID formats the
  // census sees (plus the empty-engine bug) so the fast parser's timing is
  // not a best-case over one layout.
  const wire::ProbeTemplate tmpl;
  if (!tmpl.valid()) {
    std::fprintf(stderr, "FAIL: probe template failed self-validation\n");
    return 1;
  }
  const auto request = snmp::make_discovery_request(4242, 4243);
  const std::vector<snmp::EngineId> engines = {
      snmp::EngineId(),
      snmp::EngineId::make_mac(net::kPenCisco,
                               net::MacAddress::from_oui(0x00000c, 0x31db80)),
      snmp::EngineId::make_ipv4(2636, net::Ipv4(198, 51, 100, 7)),
      snmp::EngineId::make_text(8072, "core-router-17.example.net"),
      snmp::EngineId::make_netsnmp(0x1122334455667788ull),
  };
  std::vector<util::Bytes> reports;
  for (std::size_t i = 0; i < engines.size(); ++i)
    reports.push_back(snmp::make_discovery_report(
                          request, engines[i],
                          static_cast<std::uint32_t>(5 + i),
                          static_cast<std::uint32_t>(86400 * (i + 1)), 42)
                          .encode());

  // Clean-corpus gate: the fast parser must take every well-formed REPORT
  // (and the probe itself). One rejection means census traffic would fall
  // back to the slow path — and the "fast" numbers below would be fiction.
  {
    wire::V3Fields fields;
    std::size_t fallbacks = 0;
    for (const auto& report : reports)
      if (!wire::parse_v3_fast(report, fields)) ++fallbacks;
    if (!wire::parse_v3_fast(request.encode(), fields)) ++fallbacks;
    if (fallbacks != 0) {
      std::fprintf(stderr,
                   "FAIL: fast parser rejected %zu of %zu clean payloads\n",
                   fallbacks, reports.size() + 1);
      return 1;
    }
  }

  // --- probe encode: full build-and-encode vs template stamp ------------
  const Measurement probe_full = measure(repeats, iterations, [&](auto i) {
    const auto message =
        snmp::make_discovery_request(rotate_id(i), rotate_id(i + 1));
    consume(message.encode().size());
  });
  util::Bytes stamp_buffer;
  const Measurement probe_stamp = measure(repeats, iterations, [&](auto i) {
    tmpl.stamp(rotate_id(i), rotate_id(i + 1), stamp_buffer);
    consume(stamp_buffer[tmpl.msg_id_offset()]);
  });

  // --- report decode: full message tree vs single-pass scan ------------
  const Measurement decode_full = measure(repeats, iterations, [&](auto i) {
    const auto message =
        snmp::V3Message::decode(reports[static_cast<std::size_t>(i) %
                                        reports.size()]);
    consume(message.ok() ? message.value().usm.engine_boots : 0);
  });
  const Measurement decode_fast = measure(repeats, iterations, [&](auto i) {
    wire::V3Fields fields;
    wire::parse_v3_fast(
        reports[static_cast<std::size_t>(i) % reports.size()], fields);
    consume(fields.engine_boots);
  });

  // --- report encode: message tree vs direct writer ---------------------
  const auto& report_engine = engines[1];
  const Measurement encode_full = measure(repeats, iterations, [&](auto i) {
    const auto message = snmp::make_discovery_report(
        request, report_engine, static_cast<std::uint32_t>(i & 0xff),
        static_cast<std::uint32_t>(i), 42);
    consume(message.encode().size());
  });
  util::Bytes report_buffer;
  const Measurement encode_direct = measure(repeats, iterations, [&](auto i) {
    wire::encode_report_into(report_buffer, 4242, 4243, report_engine.raw(),
                             static_cast<std::uint32_t>(i & 0xff),
                             static_cast<std::uint32_t>(i), 42,
                             snmp::kOidUsmStatsUnknownEngineIds);
    consume(report_buffer.size());
  });

  struct Row {
    const char* op;
    const char* baseline;
    Measurement fast;
    Measurement full;
    bool must_be_alloc_free;
  };
  const Row result_rows[] = {
      {"probe_encode_stamp", "probe_encode_full", probe_stamp, probe_full,
       true},
      {"report_decode_fast", "report_decode_full", decode_fast, decode_full,
       true},
      {"report_encode_direct", "report_encode_full", encode_direct,
       encode_full, true},
  };

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, /*seed=*/1, /*threads=*/1,
                             /*scan_shards=*/0);
  rows.meta("quick", std::int64_t{quick});
  rows.meta("iterations", iterations);

  util::TablePrinter table(
      {"Op", "Fast ns/op", "Full ns/op", "Speedup", "Fast allocs/op",
       "Full allocs/op"});
  bool alloc_free = true;
  for (const Row& row : result_rows) {
    const double speedup =
        row.fast.ns_per_op > 0 ? row.full.ns_per_op / row.fast.ns_per_op : 0;
    char speedup_text[32], fast_ns[32], full_ns[32], fast_allocs[32],
        full_allocs[32];
    std::snprintf(speedup_text, sizeof(speedup_text), "%.1fx", speedup);
    std::snprintf(fast_ns, sizeof(fast_ns), "%.1f", row.fast.ns_per_op);
    std::snprintf(full_ns, sizeof(full_ns), "%.1f", row.full.ns_per_op);
    std::snprintf(fast_allocs, sizeof(fast_allocs), "%.3f",
                  row.fast.allocs_per_op);
    std::snprintf(full_allocs, sizeof(full_allocs), "%.3f",
                  row.full.allocs_per_op);
    table.add_row({row.op, fast_ns, full_ns, speedup_text, fast_allocs,
                   full_allocs});
    rows.begin_row()
        .field("op", row.op)
        .field("baseline", row.baseline)
        .field("ns_per_op", row.fast.ns_per_op)
        .field("baseline_ns_per_op", row.full.ns_per_op)
        .field("allocs_per_op", row.fast.allocs_per_op)
        .field("baseline_allocs_per_op", row.full.allocs_per_op)
        .field("speedup", speedup);
    if (row.must_be_alloc_free && row.fast.allocs_per_op != 0.0) {
      std::fprintf(stderr, "FAIL: %s allocated (%.3f allocs/op) — the fast "
                           "path must be allocation-free\n",
                   row.op, row.fast.allocs_per_op);
      alloc_free = false;
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (!alloc_free) return 1;

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr, "FAIL: BENCH_wire.json failed its schema check\n");
    return 1;
  }
  rows.write("BENCH_wire.json");
  std::printf("Wrote BENCH_wire.json  (sink %llu)\n",
              static_cast<unsigned long long>(g_sink));
  return 0;
}
