// bench_store: the memory-bounded record store vs the historical in-RAM
// vectors (ROADMAP "Streaming record store").
//
// Two experiments, machine-readable in BENCH_store.json:
//   resident_sweep  peak RSS while writing + streaming N synthetic records
//                   through a RecordStore under a resident-budget sweep,
//                   against the legacy std::vector baseline. Under a cap
//                   the RSS delta stays flat as N grows; the vector (and
//                   the unbounded store) grow with N.
//   checkpoint      bytes of one CampaignCheckpoint at a mid-scan boundary
//                   holding N records: legacy mode embeds every record in
//                   the JSON (O(N)); store mode persists only the manifest
//                   — open tail + patches — so the cost is O(records since
//                   the last sealed block), never O(N).
//
// Usage: bench_store [--quick]
// Exits non-zero when the emitted JSON fails its own schema check;
// scripts/check.sh runs `bench_store --quick` and treats a failure as
// bench-artifact schema drift.
//
// Peak RSS comes from /proc/self/status VmHWM, reset per phase by writing
// "5" to /proc/self/clear_refs (Linux-only; elsewhere the reset fails and
// rows carry cumulative peaks, flagged by meta.rss_reset = 0). Phases run
// smallest-footprint first so an earlier phase's freed-but-retained heap
// can never mask a later phase's true demand.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/registry.hpp"
#include "obs/json.hpp"
#include "scan/checkpoint.hpp"
#include "store/record_store.hpp"

using namespace snmpv3fp;

namespace {

// Parses one "Key:  <n> kB" line out of /proc/self/status.
std::size_t read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0)
      return static_cast<std::size_t>(
          std::strtoull(line.c_str() + std::strlen(key), nullptr, 10));
  }
  return 0;
}

// Resets VmHWM to the current RSS; false when unsupported (non-Linux or
// restricted /proc).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear.is_open()) return false;
  clear << "5";
  clear.flush();
  return clear.good();
}

// Deterministic synthetic record with the fields the codec exercises:
// both families, missing engine IDs, duplicate responses, extra engines.
scan::ScanRecord make_record(std::uint64_t i) {
  scan::ScanRecord r;
  if (i % 3 == 0) {
    const std::array<std::uint16_t, 8> groups{
        0x2001, 0xdb8, 0, 0, 0, 0, static_cast<std::uint16_t>(i >> 16),
        static_cast<std::uint16_t>(i)};
    r.target = net::Ipv6::from_groups(groups);
  } else {
    r.target = net::Ipv4(0x0a000000u + static_cast<std::uint32_t>(i));
  }
  if (i % 5 != 1)
    r.engine_id = snmp::EngineId::make_mac(
        net::kPenCisco,
        net::MacAddress::from_oui(0x00000c,
                                  static_cast<std::uint32_t>(i % 9973)));
  r.engine_boots = static_cast<std::uint32_t>(1 + i % 37);
  r.engine_time = static_cast<std::uint32_t>(i % 100000);
  r.send_time = static_cast<util::VTime>(i) * 40 * util::kMicrosecond;
  r.receive_time = r.send_time + 18 * util::kMillisecond;
  r.response_count = 1 + i % 2;
  r.response_bytes = 90 + i % 40;
  if (i % 11 == 0)
    r.extra_engines.push_back(snmp::EngineId::make_mac(
        net::kPenCisco,
        net::MacAddress::from_oui(0x00000c,
                                  static_cast<std::uint32_t>(i % 131))));
  return r;
}

// Folds the fields every mode must reproduce; equal checksums across modes
// at the same N prove the store read back exactly what the vector holds.
std::uint64_t fold(std::uint64_t h, const scan::ScanRecord& r) {
  h = h * 1099511628211ull ^ static_cast<std::uint64_t>(r.send_time);
  h = h * 1099511628211ull ^ r.engine_boots;
  h = h * 1099511628211ull ^ r.engine_time;
  h = h * 1099511628211ull ^ r.response_count;
  h = h * 1099511628211ull ^ r.extra_engines.size();
  return h;
}

struct PhaseResult {
  std::size_t baseline_kb = 0;
  std::size_t peak_kb = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  double wall_ms = 0;
  std::uint64_t checksum = 0;
};

// Writes N records then streams them back. cap_bytes < 0 selects the
// legacy std::vector baseline; >= 0 is a store resident budget (0 =
// unbounded, spill files still written).
PhaseResult run_phase(std::int64_t cap_bytes, std::size_t records,
                      const std::filesystem::path& dir) {
  PhaseResult out;
  reset_peak_rss();
  out.baseline_kb = read_status_kb("VmRSS:");
  benchx::WallTimer timer;
  std::uint64_t checksum = 1469598103934665603ull;
  if (cap_bytes < 0) {
    std::vector<scan::ScanRecord> legacy;
    for (std::size_t i = 0; i < records; ++i) legacy.push_back(make_record(i));
    for (const auto& r : legacy) checksum = fold(checksum, r);
  } else {
    store::StoreOptions options;
    options.dir = dir.string();
    options.max_resident_bytes = static_cast<std::size_t>(cap_bytes);
    store::RecordStore store(options, "bench");
    for (std::size_t i = 0; i < records; ++i) store.append(make_record(i));
    store.seal();
    out.resident_bytes = store.resident_bytes();
    out.spilled_bytes = store.spilled_bytes();
    auto cursor = store.cursor();
    scan::ScanRecord r;
    while (cursor.next(r)) checksum = fold(checksum, r);
    if (!cursor.error().empty())
      std::fprintf(stderr, "store read failed: %s\n", cursor.error().c_str());
    store.remove_files();
  }
  out.wall_ms = timer.elapsed_ms();
  out.peak_kb = read_status_kb("VmHWM:");
  out.checksum = checksum;
  return out;
}

// One CampaignCheckpoint holding a single shard mid-scan with N records,
// serialized the legacy way (records embedded) and the store way
// (manifest only). Returns to_json() sizes.
std::pair<std::size_t, std::size_t> checkpoint_bytes(
    std::size_t records, const std::filesystem::path& dir,
    std::uint64_t& tail_records) {
  scan::CampaignCheckpoint legacy;
  legacy.shard_states.emplace_back();
  auto& legacy_shard = legacy.shard_states.back();
  legacy_shard.cursor = records;
  for (std::size_t i = 0; i < records; ++i)
    legacy_shard.partial.records.push_back(make_record(i));
  const std::size_t legacy_bytes = legacy.to_json().size();

  store::StoreOptions options;
  options.dir = dir.string();
  store::RecordStore store(options, "ckpt");
  for (std::size_t i = 0; i < records; ++i) store.append(make_record(i));
  const auto manifest = store.manifest();  // mid-scan: open tail, no seal
  tail_records = records - manifest.committed_records;
  scan::CampaignCheckpoint compact;
  compact.shard_states.emplace_back();
  auto& store_shard = compact.shard_states.back();
  store_shard.cursor = records;
  store_shard.store_manifest = manifest;
  const std::size_t store_bytes = compact.to_json().size();
  store.remove_files();
  return {legacy_bytes, store_bytes};
}

// Fails closed on drift: scripts/check.sh relies on this exit code.
bool schema_ok(const std::string& json) {
  const auto parsed = obs::JsonValue::parse(json);
  if (!parsed || !parsed->is_object()) return false;
  const auto* meta = parsed->find("meta");
  if (!meta || !meta->is_object() || !meta->find("schema") ||
      !meta->find("rss_reset"))
    return false;
  const auto* rows = parsed->find("rows");
  if (!rows || !rows->is_array() || rows->items().empty()) return false;
  static constexpr const char* kSweepKeys[] = {
      "mode",          "records",       "cap_bytes", "peak_rss_kb",
      "rss_delta_kb",  "resident_bytes", "spilled_bytes", "wall_ms"};
  static constexpr const char* kCkptKeys[] = {"records", "legacy_bytes",
                                              "store_bytes", "tail_records"};
  std::size_t sweeps = 0, ckpts = 0;
  for (const auto& row : rows->items()) {
    if (!row.is_object()) return false;
    const auto* kind = row.find("kind");
    if (!kind) return false;
    if (kind->as_string() == "resident_sweep") {
      for (const char* key : kSweepKeys)
        if (!row.find(key)) return false;
      ++sweeps;
    } else if (kind->as_string() == "checkpoint") {
      for (const char* key : kCkptKeys)
        if (!row.find(key)) return false;
      ++ckpts;
    } else {
      return false;
    }
  }
  return sweeps > 0 && ckpts > 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  benchx::print_header(
      "store", "Memory-bounded record store: peak RSS and checkpoint bytes");

  const auto dir =
      std::filesystem::temp_directory_path() / "snmpv3fp_bench_store";
  std::filesystem::create_directories(dir);
  const bool rss_reset = reset_peak_rss();
  if (!rss_reset)
    std::printf("note: peak-RSS reset unavailable; reporting cumulative "
                "VmHWM\n\n");

  benchx::JsonRows rows;
  benchx::stamp_run_metadata(rows, /*seed=*/1, /*threads=*/0,
                             /*scan_shards=*/0);
  rows.meta("rss_reset", std::int64_t{rss_reset});
  rows.meta("quick", std::int64_t{quick});

  // --- resident sweep ---------------------------------------------------
  struct Mode {
    const char* name;
    std::int64_t cap_bytes;  // -1 = legacy vector baseline
  };
  // Smallest working set first (see the peak-RSS note up top).
  const Mode modes[] = {{"store_cap64k", 64 << 10},
                        {"store_cap256k", 256 << 10},
                        {"store_cap1m", 1 << 20},
                        {"store_unbounded", 0},
                        {"vector", -1}};
  std::vector<std::size_t> counts = quick
                                        ? std::vector<std::size_t>{50000}
                                        : std::vector<std::size_t>{50000,
                                                                   200000};

  util::TablePrinter sweep(
      {"Mode", "Records", "RSS delta", "Resident", "Spilled", "Wall ms"});
  std::vector<std::uint64_t> checksums(counts.size(), 0);
  bool checksum_ok = true;
  for (const auto& mode : modes) {
    for (std::size_t ci = 0; ci < counts.size(); ++ci) {
      const std::size_t n = counts[ci];
      const auto r = run_phase(mode.cap_bytes, n, dir);
      if (checksums[ci] == 0) checksums[ci] = r.checksum;
      if (r.checksum != checksums[ci]) checksum_ok = false;
      const std::size_t delta_kb =
          r.peak_kb > r.baseline_kb ? r.peak_kb - r.baseline_kb : 0;
      sweep.add_row({mode.name, util::fmt_count(n),
                     util::fmt_count(delta_kb) + " kB",
                     util::fmt_count(r.resident_bytes) + " B",
                     util::fmt_count(r.spilled_bytes) + " B",
                     util::fmt_double(r.wall_ms, 1)});
      rows.begin_row()
          .field("kind", "resident_sweep")
          .field("mode", mode.name)
          .field("records", static_cast<std::int64_t>(n))
          .field("cap_bytes", mode.cap_bytes)
          .field("peak_rss_kb", static_cast<std::int64_t>(r.peak_kb))
          .field("rss_delta_kb", static_cast<std::int64_t>(delta_kb))
          .field("resident_bytes",
                 static_cast<std::int64_t>(r.resident_bytes))
          .field("spilled_bytes", static_cast<std::int64_t>(r.spilled_bytes))
          .field("wall_ms", r.wall_ms);
    }
  }
  std::printf("%s\n", sweep.render().c_str());
  if (!checksum_ok) {
    std::fprintf(stderr,
                 "FAIL: store read-back checksum differs from the vector "
                 "baseline\n");
    return 1;
  }

  // --- checkpoint bytes per boundary ------------------------------------
  const std::vector<std::size_t> ckpt_counts =
      quick ? std::vector<std::size_t>{1000, 4000}
            : std::vector<std::size_t>{1000, 4000, 16000};
  util::TablePrinter ckpt(
      {"Records", "Legacy ckpt", "Store ckpt", "Tail records"});
  for (const std::size_t n : ckpt_counts) {
    std::uint64_t tail_records = 0;
    const auto [legacy_bytes, store_bytes] =
        checkpoint_bytes(n, dir, tail_records);
    ckpt.add_row({util::fmt_count(n), util::fmt_count(legacy_bytes) + " B",
                  util::fmt_count(store_bytes) + " B",
                  util::fmt_count(tail_records)});
    rows.begin_row()
        .field("kind", "checkpoint")
        .field("records", static_cast<std::int64_t>(n))
        .field("legacy_bytes", static_cast<std::int64_t>(legacy_bytes))
        .field("store_bytes", static_cast<std::int64_t>(store_bytes))
        .field("tail_records", static_cast<std::int64_t>(tail_records));
  }
  std::printf("%s\n", ckpt.render().c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const std::string json = rows.render();
  if (!schema_ok(json)) {
    std::fprintf(stderr, "FAIL: BENCH_store.json failed its schema check\n");
    return 1;
  }
  rows.write("BENCH_store.json");
  std::printf("Wrote BENCH_store.json\n");
  return 0;
}
