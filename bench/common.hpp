// Shared plumbing for the experiment benches: cached pipeline runs (one
// per world flavour) and small print helpers so every bench emits the same
// "paper vs measured" layout.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

namespace snmpv3fp::benchx {

// Full-Internet world (all device kinds): Figures 4-9, 11, Tables 1-3.
const core::PipelineResult& full_pipeline();

// Router-focused world (deep infrastructure): Figures 10, 12-20.
const core::PipelineResult& router_pipeline();

// RunReports for the cached pipeline runs above. The cached runs execute
// under a RunObserver, so these carry spans, metrics and shard progress in
// addition to the accounting sections.
const core::RunReport& full_run_report();
const core::RunReport& router_run_report();

// Build/run provenance baked into bench JSON artifacts (see
// JsonRows::meta): compiler + flags the bench binary was built with.
std::string build_flags();

void print_header(const std::string& experiment, const std::string& title);

// Prints an ECDF as "F(x)" rows at the given x positions.
void print_ecdf_at(const std::string& label, const util::Ecdf& ecdf,
                   const std::vector<double>& xs);

// One "paper vs measured" comparison row.
void print_paper_row(const std::string& metric, const std::string& paper,
                     const std::string& measured);

// Wall-clock stopwatch (steady_clock) for benches that time whole stages
// rather than google-benchmark iterations.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Runs `fn` `repeats` times and returns the fastest wall time in ms (the
// usual noise-resistant estimator for single-shot stage timings).
double best_wall_ms(int repeats, const std::function<void()>& fn);

// Accumulates flat rows of string/number fields and renders them as a JSON
// array of objects — the machine-readable side channel next to a bench's
// human-readable output. Field order within a row is preserved.
//
// With run metadata attached (meta()/stamp_run_metadata), render() emits
// {"meta": {...}, "rows": [...]} instead of the bare array so artifacts
// are self-describing across runs and machines.
class JsonRows {
 public:
  JsonRows& begin_row();
  JsonRows& field(std::string_view key, std::string_view value);
  JsonRows& field(std::string_view key, double value);
  JsonRows& field(std::string_view key, std::int64_t value);

  JsonRows& meta(std::string_view key, std::string_view value);
  JsonRows& meta(std::string_view key, double value);
  JsonRows& meta(std::string_view key, std::int64_t value);

  std::string render() const;
  // Writes `render()` to `path`; returns false (and prints to stderr) on
  // I/O failure instead of throwing — benches should still finish.
  bool write(const std::string& path) const;

 private:
  struct Field {
    std::string key;
    std::string rendered;  // already JSON-encoded value
  };
  std::vector<Field> meta_;
  std::vector<std::vector<Field>> rows_;
};

// Stamps the standard provenance block: schema version, RNG seed, resolved
// thread count, scan shard count, and build flags.
void stamp_run_metadata(JsonRows& rows, std::uint64_t seed,
                        std::size_t threads, std::size_t scan_shards);

}  // namespace snmpv3fp::benchx
