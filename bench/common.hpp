// Shared plumbing for the experiment benches: cached pipeline runs (one
// per world flavour) and small print helpers so every bench emits the same
// "paper vs measured" layout.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace snmpv3fp::benchx {

// Full-Internet world (all device kinds): Figures 4-9, 11, Tables 1-3.
const core::PipelineResult& full_pipeline();

// Router-focused world (deep infrastructure): Figures 10, 12-20.
const core::PipelineResult& router_pipeline();

void print_header(const std::string& experiment, const std::string& title);

// Prints an ECDF as "F(x)" rows at the given x positions.
void print_ecdf_at(const std::string& label, const util::Ecdf& ecdf,
                   const std::vector<double>& xs);

// One "paper vs measured" comparison row.
void print_paper_row(const std::string& metric, const std::string& paper,
                     const std::string& measured);

}  // namespace snmpv3fp::benchx
