// Figure 8: ECDF of the absolute difference of the derived last-reboot
// time between the two scans, for all IPs vs router IPs. Paper: IPv6 and
// router IPs are tight; IPv4-all spreads out (cheap CPE clocks); the 10 s
// filter threshold sits at the knee of the router curve.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 8",
                       "last-reboot difference between scans (seconds)");
  const auto& r = benchx::full_pipeline();

  // Consistency is evaluated *before* the reboot-consistency filter: keep
  // records with matching engine IDs and boots (a reboot in between makes
  // the delta meaningless) but do not yet enforce the 10 s rule.
  auto v4 = r.v4_joined;
  auto v6 = r.v6_joined;
  std::erase_if(v4, [](const core::JoinedRecord& j) {
    return !j.engine_ids_match() || !j.boots_match();
  });
  std::erase_if(v6, [](const core::JoinedRecord& j) {
    return !j.engine_ids_match() || !j.boots_match();
  });

  const auto v4_all = core::reboot_delta_ecdf(v4);
  const auto v6_all = core::reboot_delta_ecdf(v6);
  const auto v4_router = core::reboot_delta_ecdf(v4, &r.router_addresses);
  const auto v6_router = core::reboot_delta_ecdf(v6, &r.router_addresses);

  const std::vector<double> xs = {0, 1, 2, 5, 10, 20, 60, 120};
  benchx::print_ecdf_at("IPv4 all IPs", v4_all, xs);
  benchx::print_ecdf_at("IPv4 router IPs", v4_router, xs);
  benchx::print_ecdf_at("IPv6 all IPs", v6_all, xs);
  benchx::print_ecdf_at("IPv6 router IPs", v6_router, xs);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("IPv6 delta <= 10 s", "very consistent (~1.0)",
                          util::fmt_percent(v6_all.fraction_at_most(10)));
  benchx::print_paper_row("IPv4 routers <= 10 s (knee)", "high",
                          util::fmt_percent(v4_router.fraction_at_most(10)));
  benchx::print_paper_row("IPv4 all <= 10 s (spread out)", "lower than routers",
                          util::fmt_percent(v4_all.fraction_at_most(10)));
  return 0;
}
