// Figure 15: router vendor popularity per continent (heatmap rows).
// Paper: Cisco dominant everywhere; Huawei ~27% in Asia, ~22% in Europe,
// ~14% in South America/Africa, absent in North America, <1% Oceania.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 15", "router vendor popularity per continent");
  const auto& r = benchx::router_pipeline();

  const auto rows = core::vendor_share_by_region(r.devices);
  const std::vector<std::string> vendors = {"Cisco", "Huawei", "Net-SNMP",
                                            "Juniper"};
  util::TablePrinter table({"Region (routers)", "Cisco", "Huawei", "Net-SNMP",
                            "Juniper", "Other"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        row.label + " (" + util::fmt_compact(static_cast<double>(row.routers)) +
        ")"};
    double named = 0.0;
    for (const auto& vendor : vendors) {
      const double share = row.vendor_tally.fraction(vendor);
      named += share;
      cells.push_back(util::fmt_percent(share));
    }
    cells.push_back(util::fmt_percent(1.0 - named));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << "\nPaper (Fig. 15): regions EU(134k) NA(97k) AS(81k) SA(22k) "
               "AF(5k) OC(5k); Cisco dominant in all; Huawei ~27% AS, ~22% "
               "EU, ~14% SA/AF, ~0% NA, <1% OC\n";

  std::cout << "\nShape checks:\n";
  const auto share_of = [&](const std::string& region,
                            const std::string& vendor) {
    for (const auto& row : rows)
      if (row.label == region) return row.vendor_tally.fraction(vendor);
    return 0.0;
  };
  benchx::print_paper_row("Huawei share in AS", "~27%",
                          util::fmt_percent(share_of("AS", "Huawei")));
  benchx::print_paper_row("Huawei share in EU", "~22%",
                          util::fmt_percent(share_of("EU", "Huawei")));
  benchx::print_paper_row("Huawei share in NA", "~0%",
                          util::fmt_percent(share_of("NA", "Huawei")));
  benchx::print_paper_row("Cisco dominant in every region", "yes",
                          share_of("EU", "Cisco") > 0.4 &&
                                  share_of("NA", "Cisco") > 0.4 &&
                                  share_of("AS", "Cisco") > 0.4
                              ? "yes"
                              : "NO");
  return 0;
}
