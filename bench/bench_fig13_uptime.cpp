// Figure 13: CDF of the time since the last reboot for identified routers.
// Paper: ~20% rebooted within the last month, >50% since the start of the
// measurement year (~3.5 months), <25% running for more than a year.
#include "common.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("Figure 13", "time since last reboot (routers)");
  const auto& r = benchx::router_pipeline();

  // The v4 scans start at day 3 of simulated time.
  const util::VTime scan_time = 3 * util::kDay;
  const auto uptimes = core::uptime_days(r.devices, /*routers_only=*/true,
                                         scan_time);

  const std::vector<double> xs = {7, 30, 105, 182, 365, 730, 1825, 3650};
  benchx::print_ecdf_at("Router uptime (days)", uptimes, xs);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("rebooted within last month", "~20%",
                          util::fmt_percent(uptimes.fraction_at_most(30)));
  benchx::print_paper_row("rebooted since start of year (~105 days)", ">50%",
                          util::fmt_percent(uptimes.fraction_at_most(105)));
  benchx::print_paper_row("last reboot more than a year ago", "<25%",
                          util::fmt_percent(1.0 -
                                            uptimes.fraction_at_most(365)));
  std::cout << "\n(Implication the paper draws: a large fraction of routers\n"
               "have not recently installed updates requiring a reboot.)\n";
  return 0;
}
