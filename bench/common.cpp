#include "common.hpp"

#include <cstdio>

namespace snmpv3fp::benchx {

const core::PipelineResult& full_pipeline() {
  static const core::PipelineResult result = [] {
    std::fprintf(stderr, "[bench] building full-Internet world + campaigns...\n");
    core::PipelineOptions options;
    options.world = topo::WorldConfig::full_internet();
    return core::run_full_pipeline(options);
  }();
  return result;
}

const core::PipelineResult& router_pipeline() {
  static const core::PipelineResult result = [] {
    std::fprintf(stderr, "[bench] building router-focus world + campaigns...\n");
    core::PipelineOptions options;
    options.world = topo::WorldConfig::router_focus();
    return core::run_full_pipeline(options);
  }();
  return result;
}

void print_header(const std::string& experiment, const std::string& title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n"
            << "(simulated reproduction of Albakour et al., IMC 2021 — "
               "scaled world; compare shapes/ratios, not magnitudes)\n\n";
}

void print_ecdf_at(const std::string& label, const util::Ecdf& ecdf,
                   const std::vector<double>& xs) {
  std::cout << label << " (n=" << ecdf.size() << ")\n";
  for (const double x : xs) {
    std::printf("  F(%-10.6g) = %.3f\n", x, ecdf.fraction_at_most(x));
  }
}

void print_paper_row(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace snmpv3fp::benchx
