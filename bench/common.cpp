#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace snmpv3fp::benchx {

namespace {

// Cached pipeline run plus the RunReport observed alongside it. The
// observer is execution-only (tests/test_obs.cpp proves bit-identical
// results), so benches consuming only the PipelineResult see the exact
// run they always did.
struct ObservedRun {
  core::PipelineResult result;
  core::RunReport report;
};

ObservedRun run_observed(const char* label, topo::WorldConfig world) {
  std::fprintf(stderr, "[bench] building %s world + campaigns...\n", label);
  obs::RunObserver observer;
  core::PipelineOptions options;
  options.world = std::move(world);
  options.obs.observer = &observer;
  ObservedRun run;
  run.result = core::run_full_pipeline(options);
  run.report = core::build_run_report(run.result, options, &observer);
  return run;
}

const ObservedRun& full_run() {
  static const ObservedRun run =
      run_observed("full-Internet", topo::WorldConfig::full_internet());
  return run;
}

const ObservedRun& router_run() {
  static const ObservedRun run =
      run_observed("router-focus", topo::WorldConfig::router_focus());
  return run;
}

}  // namespace

const core::PipelineResult& full_pipeline() { return full_run().result; }

const core::PipelineResult& router_pipeline() { return router_run().result; }

const core::RunReport& full_run_report() { return full_run().report; }

const core::RunReport& router_run_report() { return router_run().report; }

std::string build_flags() {
#ifdef SNMPFP_BUILD_FLAGS
  std::string flags = SNMPFP_BUILD_FLAGS;
#else
  std::string flags;
#endif
  if (flags.empty()) {
#ifdef NDEBUG
    flags = "release";
#else
    flags = "debug";
#endif
  }
  return flags;
}

void print_header(const std::string& experiment, const std::string& title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n"
            << "(simulated reproduction of Albakour et al., IMC 2021 — "
               "scaled world; compare shapes/ratios, not magnitudes)\n\n";
}

void print_ecdf_at(const std::string& label, const util::Ecdf& ecdf,
                   const std::vector<double>& xs) {
  std::cout << label << " (n=" << ecdf.size() << ")\n";
  for (const double x : xs) {
    std::printf("  F(%-10.6g) = %.3f\n", x, ecdf.fraction_at_most(x));
  }
}

void print_paper_row(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

double best_wall_ms(int repeats, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < std::max(repeats, 1); ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.elapsed_ms());
  }
  return best;
}

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonRows& JsonRows::begin_row() {
  rows_.emplace_back();
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, std::string_view value) {
  rows_.back().push_back({std::string(key), json_escape(value)});
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no Inf/NaN
  }
  rows_.back().push_back({std::string(key), buf});
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, std::int64_t value) {
  rows_.back().push_back({std::string(key), std::to_string(value)});
  return *this;
}

JsonRows& JsonRows::meta(std::string_view key, std::string_view value) {
  meta_.push_back({std::string(key), json_escape(value)});
  return *this;
}

JsonRows& JsonRows::meta(std::string_view key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  meta_.push_back({std::string(key), buf});
  return *this;
}

JsonRows& JsonRows::meta(std::string_view key, std::int64_t value) {
  meta_.push_back({std::string(key), std::to_string(value)});
  return *this;
}

std::string JsonRows::render() const {
  std::ostringstream out;
  const std::string indent = meta_.empty() ? "  " : "    ";
  if (!meta_.empty()) {
    out << "{\n  \"meta\": {";
    for (std::size_t f = 0; f < meta_.size(); ++f) {
      if (f) out << ", ";
      out << json_escape(meta_[f].key) << ": " << meta_[f].rendered;
    }
    out << "},\n  \"rows\": ";
  }
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << indent << "{";
    for (std::size_t f = 0; f < rows_[r].size(); ++f) {
      if (f) out << ", ";
      out << json_escape(rows_[r][f].key) << ": " << rows_[r][f].rendered;
    }
    out << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  if (!meta_.empty()) {
    out << "  ]\n}\n";
  } else {
    out << "]\n";
  }
  return out.str();
}

void stamp_run_metadata(JsonRows& rows, std::uint64_t seed,
                        std::size_t threads, std::size_t scan_shards) {
  rows.meta("schema", std::int64_t{1})
      .meta("seed", static_cast<std::int64_t>(seed))
      .meta("threads", static_cast<std::int64_t>(threads))
      .meta("scan_shards", static_cast<std::int64_t>(scan_shards))
      .meta("build_flags", build_flags());
}

bool JsonRows::write(const std::string& path) const {
  std::ofstream out(path);
  out << render();
  if (!out) {
    std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace snmpv3fp::benchx
