#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace snmpv3fp::benchx {

const core::PipelineResult& full_pipeline() {
  static const core::PipelineResult result = [] {
    std::fprintf(stderr, "[bench] building full-Internet world + campaigns...\n");
    core::PipelineOptions options;
    options.world = topo::WorldConfig::full_internet();
    return core::run_full_pipeline(options);
  }();
  return result;
}

const core::PipelineResult& router_pipeline() {
  static const core::PipelineResult result = [] {
    std::fprintf(stderr, "[bench] building router-focus world + campaigns...\n");
    core::PipelineOptions options;
    options.world = topo::WorldConfig::router_focus();
    return core::run_full_pipeline(options);
  }();
  return result;
}

void print_header(const std::string& experiment, const std::string& title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n"
            << "(simulated reproduction of Albakour et al., IMC 2021 — "
               "scaled world; compare shapes/ratios, not magnitudes)\n\n";
}

void print_ecdf_at(const std::string& label, const util::Ecdf& ecdf,
                   const std::vector<double>& xs) {
  std::cout << label << " (n=" << ecdf.size() << ")\n";
  for (const double x : xs) {
    std::printf("  F(%-10.6g) = %.3f\n", x, ecdf.fraction_at_most(x));
  }
}

void print_paper_row(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

double best_wall_ms(int repeats, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < std::max(repeats, 1); ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.elapsed_ms());
  }
  return best;
}

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonRows& JsonRows::begin_row() {
  rows_.emplace_back();
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, std::string_view value) {
  rows_.back().push_back({std::string(key), json_escape(value)});
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no Inf/NaN
  }
  rows_.back().push_back({std::string(key), buf});
  return *this;
}

JsonRows& JsonRows::field(std::string_view key, std::int64_t value) {
  rows_.back().push_back({std::string(key), std::to_string(value)});
  return *this;
}

std::string JsonRows::render() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "  {";
    for (std::size_t f = 0; f < rows_[r].size(); ++f) {
      if (f) out << ", ";
      out << json_escape(rows_[r][f].key) << ": " << rows_[r][f].rendered;
    }
    out << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  return out.str();
}

bool JsonRows::write(const std::string& path) const {
  std::ofstream out(path);
  out << render();
  if (!out) {
    std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace snmpv3fp::benchx
