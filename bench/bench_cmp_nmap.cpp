// §6.2.3: comparison with Nmap fingerprinting on a random sample of
// SNMPv3-identified routers (one IPv4 address per router).
// Paper: of 26.4k routers, Nmap returned nothing for 22.2k (84%),
// disagreed (best-guess) for 1.3k, and matched SNMPv3 for 2.9k.
#include "baselines/nmap_lite.hpp"
#include "common.hpp"
#include "util/rng.hpp"

using namespace snmpv3fp;

int main() {
  benchx::print_header("§6.2.3", "comparison with Nmap");
  const auto& r = benchx::router_pipeline();

  // One random IPv4 address per SNMPv3-identified router.
  util::Rng rng(7331);
  std::vector<std::pair<net::IpAddress, std::string>> sample;
  for (const auto& device : r.devices) {
    if (!device.is_router) continue;
    // Comparison needs an SNMPv3-side vendor verdict to agree/disagree with.
    if (device.fingerprint.vendor == "Unknown") continue;
    std::vector<net::IpAddress> v4;
    for (const auto& a : device.set->addresses)
      if (a.is_v4()) v4.push_back(a);
    if (v4.empty()) continue;
    sample.emplace_back(v4[rng.next_below(v4.size())],
                        device.fingerprint.vendor);
  }

  sim::StackSimulator stack(r.world, 999);
  baselines::NmapLite nmap;
  std::size_t no_result = 0, agree = 0, disagree = 0, guesses = 0;
  for (const auto& [address, snmp_vendor] : sample) {
    const auto fp = nmap.fingerprint(stack, address, 25 * util::kDay);
    switch (fp.outcome) {
      case baselines::NmapOutcome::kNoResult:
        ++no_result;
        break;
      case baselines::NmapOutcome::kExactMatch:
        fp.vendor == snmp_vendor ? ++agree : ++disagree;
        break;
      case baselines::NmapOutcome::kBestGuess:
        ++guesses;
        fp.vendor == snmp_vendor ? ++agree : ++disagree;
        break;
    }
  }

  std::printf("Routers sampled: %zu (paper: 26.4k)\n", sample.size());
  std::printf("  Nmap no result:        %zu (%.1f%%)\n", no_result,
              100.0 * static_cast<double>(no_result) /
                  static_cast<double>(sample.size()));
  std::printf("  Nmap agrees w/ SNMPv3: %zu (%.1f%%)\n", agree,
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(sample.size()));
  std::printf("  Nmap disagrees:        %zu (%.1f%%), of which best-guesses: "
              "%zu\n",
              disagree,
              100.0 * static_cast<double>(disagree) /
                  static_cast<double>(sample.size()),
              guesses);

  std::cout << "\nShape checks:\n";
  benchx::print_paper_row("no Nmap result (closed routers)", "84% (22.2k/26.4k)",
                          util::fmt_percent(static_cast<double>(no_result) /
                                            static_cast<double>(sample.size())));
  benchx::print_paper_row("matches SNMPv3", "11% (2.9k)",
                          util::fmt_percent(static_cast<double>(agree) /
                                            static_cast<double>(sample.size())));
  benchx::print_paper_row("disagreements are best-guesses", "all 1.3k",
                          disagree == 0
                              ? "n/a"
                              : util::fmt_percent(static_cast<double>(guesses) /
                                                  static_cast<double>(disagree)));
  std::cout << "\n(SNMPv3 needed exactly one UDP packet per router; Nmap "
               "needed dozens of TCP/ICMP probes and still failed on "
               "TCP-silent routers.)\n";
  return 0;
}
