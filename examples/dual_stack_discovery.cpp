// Dual-stack discovery: the paper's most novel capability — tying IPv4 and
// IPv6 addresses to one physical router via the shared SNMP engine — shown
// against ground truth, with precision/recall the paper could not compute.
#include <iostream>

#include "baselines/compare.hpp"
#include "core/pipeline.hpp"

using namespace snmpv3fp;

int main() {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  const auto result = core::run_full_pipeline(options);

  std::cout << "dual-stack alias sets discovered by SNMPv3:\n\n";
  std::size_t shown = 0, dual_sets = 0;
  for (const auto& set : result.resolution.sets) {
    if (!set.dual_stack()) continue;
    ++dual_sets;
    if (shown < 8) {
      ++shown;
      std::cout << "  device (engineID " << set.engine_id.to_hex().substr(0, 20)
                << "..., boots " << set.engine_boots << "):\n";
      for (const auto& address : set.addresses)
        std::cout << "    " << (address.is_v4() ? "v4 " : "v6 ")
                  << address.to_string() << "\n";
    }
  }
  std::cout << "\ntotal dual-stack sets: " << dual_sets << "\n";

  // Validate against simulation ground truth.
  baselines::AliasSets dual;
  for (const auto& set : result.resolution.sets)
    if (set.dual_stack()) dual.push_back(set.addresses);
  std::vector<net::IpAddress> universe;
  for (const auto& record : result.v4_records) universe.push_back(record.address);
  for (const auto& record : result.v6_records) universe.push_back(record.address);

  const auto& world = result.world;
  const auto metrics = baselines::pair_metrics(
      dual,
      [&](const net::IpAddress& address) -> std::int64_t {
        const auto index = world.device_index_at(address);
        return index == topo::kNoDevice ? -1 : static_cast<std::int64_t>(index);
      },
      universe);
  std::printf("\ndual-stack pair precision vs ground truth: %.3f "
              "(%zu of %zu inferred pairs correct)\n",
              metrics.precision(), metrics.correct_pairs,
              metrics.inferred_pairs);
  return 0;
}
