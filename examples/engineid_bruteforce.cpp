// Offline SNMPv3 password recovery via the leaked engine ID (paper §8,
// citing Thomas 2021, "Brute forcing SNMPv3 authentication").
//
// The attack chain this example walks end-to-end:
//   1. The attacker sends one unauthenticated discovery probe and learns
//      the agent's engine ID (the paper's measurement primitive).
//   2. The attacker passively captures ONE authenticated management packet
//      (here: the simulated operator polling sysDescr).
//   3. Because the localized key depends only on (password, engine ID),
//      every dictionary candidate can be checked OFFLINE against the
//      captured HMAC. No further packets touch the network.
#include <chrono>
#include <cstdio>

#include "sim/agent.hpp"
#include "snmp/usm.hpp"
#include "topo/generator.hpp"

using namespace snmpv3fp;

int main() {
  using snmp::AuthProtocol;

  // --- the victim router, configured like the paper's lab device --------
  topo::Device router;
  router.kind = topo::DeviceKind::kRouter;
  router.vendor = &topo::vendor_profile("Cisco");
  topo::Interface itf;
  itf.mac = net::MacAddress::from_oui(0x00000c, 0x31db80);
  itf.v4 = net::Ipv4(192, 0, 2, 1);
  router.interfaces.push_back(itf);
  router.snmpv3_enabled = true;
  router.engine_id = snmp::EngineId::make_mac(9, itf.mac);
  router.reboots = {-30 * util::kDay};
  router.boots_before_history = 147;
  router.usm_user = "netops";
  router.usm_auth_password = "Summer2021!";  // the weak operator password

  util::Rng rng(1);

  // --- step 1: unauthenticated discovery leaks the engine ID -------------
  const auto discovery = snmp::make_discovery_request(0x4a69, 0x37f0);
  const auto report = snmp::V3Message::decode(
      sim::handle_udp(router, discovery.encode(), 0, rng).front());
  const snmp::EngineId engine_id = report.value().usm.authoritative_engine_id;
  std::printf("[attacker] discovery leaked engineID=%s boots=%u time=%u\n",
              engine_id.to_hex().c_str(), report.value().usm.engine_boots,
              report.value().usm.engine_time);

  // --- step 2: capture one authenticated operator packet ------------------
  const auto operator_key = snmp::derive_localized_key(
      AuthProtocol::kHmacSha1_96, router.usm_auth_password, engine_id);
  auto poll = snmp::make_discovery_request(7000, 7001);
  poll.usm.authoritative_engine_id = engine_id;
  poll.usm.engine_boots = report.value().usm.engine_boots;
  poll.usm.engine_time = report.value().usm.engine_time;
  poll.usm.user_name = router.usm_user;
  poll.scoped_pdu.context_engine_id = engine_id.raw();
  poll.scoped_pdu.pdu.bindings = {{snmp::kOidSysDescr, snmp::VarValue::null()}};
  const auto captured =
      snmp::authenticate(AuthProtocol::kHmacSha1_96, operator_key, poll);
  std::printf("[attacker] captured authenticated GET (user '%s', MAC %s)\n",
              captured.usm.user_name.c_str(),
              util::to_hex(captured.usm.authentication_parameters).c_str());

  // The agent really accepts this capture (sanity: it is valid traffic).
  const auto response =
      sim::handle_udp(router, captured.encode(), 0, rng);
  std::printf("[agent]    answered the operator's GET: %zu response(s)\n",
              response.size());

  // --- step 3: offline dictionary attack ----------------------------------
  std::vector<std::string> dictionary;
  for (const char* stem : {"password", "admin", "cisco", "letmein", "Spring",
                           "Summer", "Autumn", "Winter"}) {
    for (const char* suffix : {"", "1", "123", "2020", "2021", "2021!"}) {
      dictionary.push_back(std::string(stem) + suffix);
    }
  }
  std::printf("[attacker] trying %zu candidate passwords offline...\n",
              dictionary.size());
  const auto start = std::chrono::steady_clock::now();
  const auto recovered = snmp::brute_force_password(
      AuthProtocol::kHmacSha1_96, captured, dictionary);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (recovered) {
    std::printf("[attacker] RECOVERED password '%s' in %.2f s (%.0f "
                "candidates/s)\n",
                recovered->c_str(), elapsed,
                static_cast<double>(dictionary.size()) / elapsed);
  } else {
    std::printf("[attacker] dictionary exhausted without a hit\n");
  }

  std::printf(
      "\nTakeaway (paper §8): a persistent, unauthenticated engine ID plus\n"
      "RFC 3414's offline-checkable key localization turns one captured\n"
      "packet into an offline password-cracking oracle. Mitigations: strong\n"
      "passwords, SNMPv3 over TLS (RFC 6353), and not deriving engine IDs\n"
      "from MAC addresses.\n");
  return recovered ? 0 : 1;
}
