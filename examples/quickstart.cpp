// Quickstart: craft one unauthenticated SNMPv3 discovery probe, fire it at
// a simulated agent, and read back the engine ID / boots / time — the
// whole trick of the paper in ~60 lines of API use.
//
// With --live <ip>, the same 60-byte probe is sent over a real UDP socket
// to the given address instead (only do this against devices you are
// authorized to probe).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/fingerprint.hpp"
#include "net/udp_socket.hpp"
#include "scan/prober.hpp"
#include "sim/fabric.hpp"
#include "topo/generator.hpp"

using namespace snmpv3fp;

namespace {

int run_simulated() {
  // 1. A tiny simulated Internet.
  topo::World world = topo::generate_world(topo::WorldConfig::tiny());
  std::printf("simulated world: %zu devices across %zu ASes\n",
              world.devices.size(), world.ases.size());

  // 2. A transport over it, and a prober bound to our vantage point.
  sim::Fabric fabric(world, {});
  scan::Prober prober(fabric, {net::Ipv4(198, 51, 100, 7), 54321});

  // 3. Probe every assigned IPv4 address once (one 60-byte UDP packet per
  //    target: 88 bytes on the wire, exactly like the paper's ZMap probe).
  scan::ProbeConfig config;
  config.label = "quickstart";
  const auto result =
      prober.run(world.addresses(net::Family::kIpv4), config, /*start=*/0);
  std::printf("probed %zu targets, %zu responded\n", result.targets_probed,
              result.responsive());

  // 4. Every response already carries the identifier triple.
  std::size_t shown = 0;
  for (const auto& record : result.records) {
    if (record.engine_id.format() != snmp::EngineIdFormat::kMac) continue;
    const auto fp = core::fingerprint_engine_id(record.engine_id);
    std::printf(
        "  %-15s engineID=%-26s boots=%-3u uptime=%us vendor=%s (%s)\n",
        record.target.to_string().c_str(),
        record.engine_id.to_hex().c_str(), record.engine_boots,
        record.engine_time, fp.vendor.c_str(),
        std::string(core::to_string(fp.source)).c_str());
    if (++shown == 10) break;
  }
  return 0;
}

int run_live(const char* target_text) {
  const auto target = net::IpAddress::parse(target_text);
  if (!target) {
    std::fprintf(stderr, "bad address: %s\n", target.error().c_str());
    return 1;
  }
  auto socket = net::UdpSocket::open(target.value().family());
  if (!socket) {
    std::fprintf(stderr, "socket: %s\n", socket.error().c_str());
    return 1;
  }
  // Connected sockets get ICMP port-unreachable reported back as
  // SendOutcome::kRefused / RecvOutcome::refused instead of silence.
  const net::Endpoint peer{target.value(), net::kSnmpPort};
  if (auto connected = socket.value().connect_to(peer); !connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.error().c_str());
    return 1;
  }
  const auto probe = snmp::make_discovery_request(0x4a69, 0x37f0).encode();
  const auto sent = socket.value().send_to(peer, probe);
  if (!sent || sent.value() != net::SendOutcome::kSent) {
    std::fprintf(stderr, "send failed%s\n",
                 sent && sent.value() == net::SendOutcome::kRefused
                     ? " (port unreachable)"
                     : "");
    return 1;
  }
  std::printf("sent %zu-byte discovery probe to %s:161\n", probe.size(),
              target.value().to_string().c_str());
  auto reply = socket.value().receive(/*timeout_ms=*/3000);
  if (!reply) {
    std::fprintf(stderr, "receive: %s\n", reply.error().c_str());
    return 1;
  }
  if (reply.value().refused) {
    std::printf("target refused the probe (ICMP port unreachable)\n");
    return 0;
  }
  if (!reply.value().datagram.has_value()) {
    std::printf("no response within 3 s\n");
    return 0;
  }
  const auto message = snmp::V3Message::decode(reply.value().datagram->payload);
  if (!message) {
    std::printf("response did not parse as SNMPv3: %s\n",
                message.error().c_str());
    return 0;
  }
  const auto& usm = message.value().usm;
  const auto fp = core::fingerprint_engine_id(usm.authoritative_engine_id);
  std::printf("engineID=%s format=%s boots=%u time=%us vendor=%s\n",
              usm.authoritative_engine_id.to_hex().c_str(),
              std::string(snmp::to_string(usm.authoritative_engine_id.format()))
                  .c_str(),
              usm.engine_boots, usm.engine_time, fp.vendor.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--live") == 0)
    return run_live(argv[2]);
  return run_simulated();
}
