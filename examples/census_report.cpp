// Census report generator: the paper's https://snmpv3.io artifact — a
// regularly-regenerated, aggregated and anonymized summary of an SNMPv3
// measurement campaign, written as Markdown (stdout) plus CSV next to it.
//
// Usage: census_report [output_dir] [--report <path.json>]
//                      [--checkpoint-dir <dir> [--checkpoint-every <n>]]
//                      [--store-dir <dir> [--max-resident-mb <n>]]
//                      [--trace <path.json>]
//                      [--timeline-virtual <s>] [--timeline-wall-ms <ms>]
//                      [--flight <path.json> [--flight-ring <n>]
//                       [--fault-surge <n>]]
//                      [--status <path.json> [--status-every <n>]]
//                      [--watch <status.json>]
//   output_dir        where census_report.md / vendor_share.csv land
//                     (default: current directory)
//   --report <path>   additionally run under the observability layer and
//                     write the unified RunReport (spans, metrics, fabric
//                     drop causes, filter funnel, time series) as JSON
//   --checkpoint-dir <dir>  checkpoint campaign progress to
//                     <dir>/campaign_v{4,6}.json; rerunning the same
//                     command after a kill resumes bit-identically
//   --checkpoint-every <n>  checkpoint every n targets per shard
//                     (default 0: only at the scan-1/scan-2 boundary)
//   --store-dir <dir>  spill scan records to memory-bounded stores under
//                     <dir>/v4 and <dir>/v6 instead of holding every
//                     record in RAM; output is bit-identical
//   --max-resident-mb <n>  resident-RAM budget per store in MiB
//                     (default 0: unbounded, spill files still written)
//   --trace <path>    write the run's spans + flight events in the Chrome
//                     trace event format (chrome://tracing / Perfetto)
//   --timeline-virtual <s>  sample deterministic per-shard time series
//                     every <s> simulated seconds (RunReport time_series)
//   --timeline-wall-ms <ms>  sample a full metrics snapshot every <ms> of
//                     wall time (non-deterministic, diagnostic)
//   --flight <path>   flight recorder: per-shard rings of notable events,
//                     dumped atomically to <path> at checkpoints, fault
//                     surges and exit
//   --flight-ring <n> events kept per shard ring (default 256)
//   --fault-surge <n> extra dump every n decode faults (default 0: off)
//   --status <path>   atomically rewrite a live status.json every
//                     --status-every targets per shard (default 1024)
//   --watch <path>    do not run a campaign; poll <path> (a status.json
//                     another process is writing) and render a refreshing
//                     ASCII dashboard until it reports complete
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "obs/fileio.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "util/table.hpp"

using namespace snmpv3fp;

namespace {

// --watch: poll a status.json some other census_report is rewriting and
// redraw it in place. Exits when the file reports the campaign complete,
// or after ~10s without a readable file.
int watch_status(const std::string& path) {
  int missing_polls = 0;
  bool drew = false;
  while (true) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = obs::JsonValue::parse(buffer.str());
    if (in && parsed.has_value() && parsed->is_object()) {
      missing_polls = 0;
      // ANSI home+clear keeps the dashboard in place between redraws.
      std::cout << "\033[H\033[2J" << obs::render_status_dashboard(*parsed)
                << std::flush;
      drew = true;
      const auto* complete = parsed->find("complete");
      if (complete != nullptr && complete->as_bool()) return 0;
    } else if (++missing_polls > 20) {
      std::cerr << (drew ? "status file went away: " : "no status file at: ")
                << path << "\n";
      return drew ? 0 : 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path out_dir = ".";
  std::string report_path;
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 0;
  std::string store_dir;
  std::size_t max_resident_mb = 0;
  std::string trace_path;
  std::string watch_path;
  obs::TelemetryOptions telemetry;
  const auto usage = [] {
    std::cerr << "usage: census_report [output_dir] [--report <path.json>] "
                 "[--checkpoint-dir <dir> [--checkpoint-every <n>]] "
                 "[--store-dir <dir> [--max-resident-mb <n>]] "
                 "[--trace <path.json>] [--timeline-virtual <s>] "
                 "[--timeline-wall-ms <ms>] [--flight <path.json> "
                 "[--flight-ring <n>] [--fault-surge <n>]] "
                 "[--status <path.json> [--status-every <n>]] "
                 "[--watch <status.json>]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      if (i + 1 >= argc) return usage();
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      if (i + 1 >= argc) return usage();
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      if (i + 1 >= argc) return usage();
      checkpoint_every = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--store-dir") == 0) {
      if (i + 1 >= argc) return usage();
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-resident-mb") == 0) {
      if (i + 1 >= argc) return usage();
      max_resident_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) return usage();
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeline-virtual") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.timeline.sample_every_virtual = static_cast<util::VTime>(
          std::atof(argv[++i]) * static_cast<double>(util::kSecond));
    } else if (std::strcmp(argv[i], "--timeline-wall-ms") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.timeline.sample_every_wall_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.flight.dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-ring") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.flight.ring_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-surge") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.flight.fault_surge_threshold =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--status") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.status.path = argv[++i];
    } else if (std::strcmp(argv[i], "--status-every") == 0) {
      if (i + 1 >= argc) return usage();
      telemetry.status.every_n_targets =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      if (i + 1 >= argc) return usage();
      watch_path = argv[++i];
    } else {
      out_dir = argv[i];
    }
  }

  if (!watch_path.empty()) return watch_status(watch_path);

  const bool wants_telemetry = telemetry.timeline.enabled() ||
                               !telemetry.flight.dump_path.empty() ||
                               !telemetry.status.path.empty();
  obs::RunObserver observer;
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  // Execution-only: observing never changes result bits (test_obs.cpp,
  // test_telemetry.cpp).
  if (!report_path.empty() || !trace_path.empty() || wants_telemetry)
    options.obs.observer = &observer;
  if (wants_telemetry) observer.configure_telemetry(telemetry);
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every_n_targets = checkpoint_every;
  options.store.dir = store_dir;
  options.store.max_resident_bytes = max_resident_mb * std::size_t{1} << 20;
  const auto r = core::run_full_pipeline(options);
  if (r.interrupted) {
    std::cerr << "campaign interrupted; rerun to resume from "
              << checkpoint_dir << "\n";
    return 3;
  }

  std::ostringstream md;
  md << "# SNMPv3 census report (simulated)\n\n";
  md << "Campaigns: 2x IPv4 (6-day gap), 2x IPv6 over the hitlist "
        "(1-day gap).\n\n";

  md << "## Scan overview\n\n";
  util::TablePrinter overview({"Measurement", "#IPs", "#Engine IDs"});
  overview.add_row({"IPv4 scan 1",
                    util::fmt_count(r.v4_campaign.scan1.responsive()),
                    util::fmt_count(r.v4_campaign.scan1.unique_engine_ids())});
  overview.add_row({"IPv4 scan 2",
                    util::fmt_count(r.v4_campaign.scan2.responsive()),
                    util::fmt_count(r.v4_campaign.scan2.unique_engine_ids())});
  overview.add_row({"IPv6 scan 1",
                    util::fmt_count(r.v6_campaign.scan1.responsive()),
                    util::fmt_count(r.v6_campaign.scan1.unique_engine_ids())});
  md << overview.render() << "\n";

  md << "## Filtering funnel (IPv4)\n\n";
  util::TablePrinter funnel({"Stage", "Removed"});
  for (std::size_t i = 0; i < core::kFilterStageCount; ++i)
    funnel.add_row(
        {std::string(core::to_string(static_cast<core::FilterStage>(i))),
         util::fmt_count(r.v4_report.dropped[i])});
  funnel.add_row({"survivors", util::fmt_count(r.v4_report.output)});
  md << funnel.render() << "\n";

  const auto breakdown = core::breakdown_by_stack(r.resolution);
  md << "## Alias resolution\n\n";
  md << "- alias sets: " << util::fmt_count(r.resolution.sets.size()) << "\n";
  md << "- non-singleton sets: "
     << util::fmt_count(r.resolution.non_singleton_count()) << " ("
     << util::fmt_double(r.resolution.mean_ips_per_non_singleton(), 1)
     << " IPs each)\n";
  md << "- dual-stack sets: " << util::fmt_count(breakdown.dual_sets)
     << "\n\n";

  md << "## Vendor market share (aggregated)\n\n";
  const auto popularity =
      core::vendor_popularity(r.devices, /*routers_only=*/false);
  std::size_t total = 0;
  for (const auto& entry : popularity) total += entry.total();
  util::TablePrinter vendors({"Vendor", "Devices", "Share"});
  util::CsvWriter csv({"vendor", "devices", "share"});
  for (std::size_t i = 0; i < popularity.size() && i < 10; ++i) {
    const double share = static_cast<double>(popularity[i].total()) /
                         static_cast<double>(total);
    vendors.add_row({popularity[i].vendor,
                     util::fmt_count(popularity[i].total()),
                     util::fmt_percent(share)});
    csv.add_row({popularity[i].vendor, std::to_string(popularity[i].total()),
                 util::fmt_double(share, 4)});
  }
  md << vendors.render() << "\n";

  md << "## Router uptime\n\n";
  const auto uptime =
      core::uptime_days(r.devices, /*routers_only=*/true, 3 * util::kDay);
  if (!uptime.empty()) {
    md << "- rebooted within 30 days: "
       << util::fmt_percent(uptime.fraction_at_most(30)) << "\n";
    md << "- running for over a year: "
       << util::fmt_percent(1.0 - uptime.fraction_at_most(365)) << "\n\n";
  }

  md << "_Per-network results are aggregated; no individual operator is\n"
        "identified (paper §3.3 ethics)._\n";

  // Write artifacts. An ofstream into a missing directory fails silently,
  // so make sure out_dir exists first.
  {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }
  const auto md_path = out_dir / "census_report.md";
  const auto csv_path = out_dir / "vendor_share.csv";
  std::ofstream(md_path) << md.str();
  std::ofstream(csv_path) << csv.render();
  std::cout << md.str();
  std::cout << "\nwrote " << md_path.string() << " and " << csv_path.string()
            << "\n";

  if (!report_path.empty()) {
    const auto report = core::build_run_report(r, options, &observer);
    if (!(std::ofstream(report_path) << report.to_json())) {
      std::cerr << "failed to write " << report_path << "\n";
      return 1;
    }
    std::cout << "wrote " << report_path << "\n";
  }
  if (!trace_path.empty()) {
    const std::string trace_json = obs::to_chrome_trace_json(
        observer.trace().snapshot(), observer.flight().events());
    if (!obs::write_file_atomic(trace_path, trace_json)) {
      std::cerr << "failed to write " << trace_path << "\n";
      return 1;
    }
    std::cout << "wrote " << trace_path << "\n";
  }
  return 0;
}
