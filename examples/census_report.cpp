// Census report generator: the paper's https://snmpv3.io artifact — a
// regularly-regenerated, aggregated and anonymized summary of an SNMPv3
// measurement campaign, written as Markdown (stdout) plus CSV next to it.
//
// Usage: census_report [output_dir] [--report <path.json>]
//                      [--checkpoint-dir <dir> [--checkpoint-every <n>]]
//                      [--store-dir <dir> [--max-resident-mb <n>]]
//   output_dir        where census_report.md / vendor_share.csv land
//                     (default: current directory)
//   --report <path>   additionally run under the observability layer and
//                     write the unified RunReport (spans, metrics, fabric
//                     drop causes, filter funnel) as JSON to <path>
//   --checkpoint-dir <dir>  checkpoint campaign progress to
//                     <dir>/campaign_v{4,6}.json; rerunning the same
//                     command after a kill resumes bit-identically
//   --checkpoint-every <n>  checkpoint every n targets per shard
//                     (default 0: only at the scan-1/scan-2 boundary)
//   --store-dir <dir>  spill scan records to memory-bounded stores under
//                     <dir>/v4 and <dir>/v6 instead of holding every
//                     record in RAM; output is bit-identical
//   --max-resident-mb <n>  resident-RAM budget per store in MiB
//                     (default 0: unbounded, spill files still written)
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

using namespace snmpv3fp;

int main(int argc, char** argv) {
  std::filesystem::path out_dir = ".";
  std::string report_path;
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 0;
  std::string store_dir;
  std::size_t max_resident_mb = 0;
  const auto usage = [] {
    std::cerr << "usage: census_report [output_dir] [--report <path.json>] "
                 "[--checkpoint-dir <dir> [--checkpoint-every <n>]] "
                 "[--store-dir <dir> [--max-resident-mb <n>]]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      if (i + 1 >= argc) return usage();
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      if (i + 1 >= argc) return usage();
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      if (i + 1 >= argc) return usage();
      checkpoint_every = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--store-dir") == 0) {
      if (i + 1 >= argc) return usage();
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-resident-mb") == 0) {
      if (i + 1 >= argc) return usage();
      max_resident_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      out_dir = argv[i];
    }
  }

  obs::RunObserver observer;
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  // Execution-only: observing never changes result bits (test_obs.cpp).
  if (!report_path.empty()) options.obs.observer = &observer;
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every_n_targets = checkpoint_every;
  options.store.dir = store_dir;
  options.store.max_resident_bytes = max_resident_mb * std::size_t{1} << 20;
  const auto r = core::run_full_pipeline(options);
  if (r.interrupted) {
    std::cerr << "campaign interrupted; rerun to resume from "
              << checkpoint_dir << "\n";
    return 3;
  }

  std::ostringstream md;
  md << "# SNMPv3 census report (simulated)\n\n";
  md << "Campaigns: 2x IPv4 (6-day gap), 2x IPv6 over the hitlist "
        "(1-day gap).\n\n";

  md << "## Scan overview\n\n";
  util::TablePrinter overview({"Measurement", "#IPs", "#Engine IDs"});
  overview.add_row({"IPv4 scan 1",
                    util::fmt_count(r.v4_campaign.scan1.responsive()),
                    util::fmt_count(r.v4_campaign.scan1.unique_engine_ids())});
  overview.add_row({"IPv4 scan 2",
                    util::fmt_count(r.v4_campaign.scan2.responsive()),
                    util::fmt_count(r.v4_campaign.scan2.unique_engine_ids())});
  overview.add_row({"IPv6 scan 1",
                    util::fmt_count(r.v6_campaign.scan1.responsive()),
                    util::fmt_count(r.v6_campaign.scan1.unique_engine_ids())});
  md << overview.render() << "\n";

  md << "## Filtering funnel (IPv4)\n\n";
  util::TablePrinter funnel({"Stage", "Removed"});
  for (std::size_t i = 0; i < core::kFilterStageCount; ++i)
    funnel.add_row(
        {std::string(core::to_string(static_cast<core::FilterStage>(i))),
         util::fmt_count(r.v4_report.dropped[i])});
  funnel.add_row({"survivors", util::fmt_count(r.v4_report.output)});
  md << funnel.render() << "\n";

  const auto breakdown = core::breakdown_by_stack(r.resolution);
  md << "## Alias resolution\n\n";
  md << "- alias sets: " << util::fmt_count(r.resolution.sets.size()) << "\n";
  md << "- non-singleton sets: "
     << util::fmt_count(r.resolution.non_singleton_count()) << " ("
     << util::fmt_double(r.resolution.mean_ips_per_non_singleton(), 1)
     << " IPs each)\n";
  md << "- dual-stack sets: " << util::fmt_count(breakdown.dual_sets)
     << "\n\n";

  md << "## Vendor market share (aggregated)\n\n";
  const auto popularity =
      core::vendor_popularity(r.devices, /*routers_only=*/false);
  std::size_t total = 0;
  for (const auto& entry : popularity) total += entry.total();
  util::TablePrinter vendors({"Vendor", "Devices", "Share"});
  util::CsvWriter csv({"vendor", "devices", "share"});
  for (std::size_t i = 0; i < popularity.size() && i < 10; ++i) {
    const double share = static_cast<double>(popularity[i].total()) /
                         static_cast<double>(total);
    vendors.add_row({popularity[i].vendor,
                     util::fmt_count(popularity[i].total()),
                     util::fmt_percent(share)});
    csv.add_row({popularity[i].vendor, std::to_string(popularity[i].total()),
                 util::fmt_double(share, 4)});
  }
  md << vendors.render() << "\n";

  md << "## Router uptime\n\n";
  const auto uptime =
      core::uptime_days(r.devices, /*routers_only=*/true, 3 * util::kDay);
  if (!uptime.empty()) {
    md << "- rebooted within 30 days: "
       << util::fmt_percent(uptime.fraction_at_most(30)) << "\n";
    md << "- running for over a year: "
       << util::fmt_percent(1.0 - uptime.fraction_at_most(365)) << "\n\n";
  }

  md << "_Per-network results are aggregated; no individual operator is\n"
        "identified (paper §3.3 ethics)._\n";

  // Write artifacts.
  const auto md_path = out_dir / "census_report.md";
  const auto csv_path = out_dir / "vendor_share.csv";
  std::ofstream(md_path) << md.str();
  std::ofstream(csv_path) << csv.render();
  std::cout << md.str();
  std::cout << "\nwrote " << md_path.string() << " and " << csv_path.string()
            << "\n";

  if (!report_path.empty()) {
    const auto report = core::build_run_report(r, options, &observer);
    if (!(std::ofstream(report_path) << report.to_json())) {
      std::cerr << "failed to write " << report_path << "\n";
      return 1;
    }
    std::cout << "wrote " << report_path << "\n";
  }
  return 0;
}
