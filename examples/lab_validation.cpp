// Lab validation (paper §6.2.1): rebuild the controlled experiment.
//
// The paper configured Cisco IOS / IOS XR / Juniper Junos devices in a lab
// and discovered that (a) configuring an SNMPv2c community string
// implicitly enables SNMPv3, (b) the unauthenticated v3 query is rejected
// with "unknown user name" — but the REPORT leaks a MAC-based engine ID,
// (c) the MAC belongs to the device's *first* interface regardless of
// which address was queried. We drive the same three checks against
// vendor-faithful simulated agents.
#include <cassert>
#include <cstdio>

#include "sim/agent.hpp"
#include "topo/generator.hpp"

using namespace snmpv3fp;

namespace {

topo::Device make_lab_router(const topo::VendorProfile& vendor,
                             bool v2c_configured) {
  topo::Device device;
  device.kind = topo::DeviceKind::kRouter;
  device.vendor = &vendor;
  // Three interfaces with distinct MACs and addresses.
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo::Interface itf;
    itf.mac = net::MacAddress::from_oui(0x00000c, 0x31db80 + i);
    itf.v4 = net::Ipv4(192, 0, 2, static_cast<std::uint8_t>(10 + i));
    device.interfaces.push_back(itf);
  }
  // "snmp-server community pass123 RO": enabling v2c implicitly enables v3.
  device.snmpv2_enabled = v2c_configured;
  device.snmpv3_enabled = v2c_configured;
  // Engine ID from the FIRST interface's MAC (the lab observation).
  device.engine_id = snmp::EngineId::make_mac(vendor.enterprise_pen,
                                              device.interfaces.front().mac);
  device.reboots = {-30 * util::kDay};
  device.boots_before_history = 147;  // engineBoots = 148 after the reboot
  return device;
}

void check(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", what);
  assert(condition);
}

}  // namespace

int main() {
  const auto& cisco = topo::vendor_profile("Cisco");
  util::Rng rng(1);
  const util::VTime now = 0;

  std::printf("1) Factory default: no SNMP configured -> silence\n");
  {
    const auto router = make_lab_router(cisco, /*v2c_configured=*/false);
    const auto v2 = snmp::V2cMessage{
        "pass123",
        {snmp::PduType::kGetRequest, 1, 0, 0,
         {{snmp::kOidSysDescr, snmp::VarValue::null()}}}};
    check(sim::handle_udp(router, v2.encode(), now, rng).empty(),
          "no SNMPv2c response");
    const auto v3 = snmp::make_discovery_request(1000, 1001);
    check(sim::handle_udp(router, v3.encode(), now, rng).empty(),
          "no SNMPv3 response");
  }

  std::printf("\n2) 'snmp-server community pass123 RO' -> v2c works\n");
  const auto router = make_lab_router(cisco, /*v2c_configured=*/true);
  {
    const auto v2 = snmp::V2cMessage{
        "pass123",
        {snmp::PduType::kGetRequest, 2, 0, 0,
         {{snmp::kOidSysDescr, snmp::VarValue::null()}}}};
    const auto responses = sim::handle_udp(router, v2.encode(), now, rng);
    check(responses.size() == 1, "one SNMPv2c response");
    const auto decoded = snmp::V2cMessage::decode(responses.front());
    check(decoded.ok(), "response decodes");
    const auto sys_descr = decoded.value().pdu.bindings.at(0).value.as_string();
    check(sys_descr.has_value() && sys_descr->find("Cisco") != std::string::npos,
          ("sysDescr mentions the vendor: '" + sys_descr.value_or("") + "'")
              .c_str());
    const auto wrong = snmp::V2cMessage{
        "public",
        {snmp::PduType::kGetRequest, 3, 0, 0,
         {{snmp::kOidSysDescr, snmp::VarValue::null()}}}};
    check(sim::handle_udp(router, wrong.encode(), now, rng).empty(),
          "wrong community silently dropped");
  }

  std::printf("\n3) Unauthenticated SNMPv3 towards EVERY interface\n");
  for (std::size_t i = 0; i < router.interfaces.size(); ++i) {
    const auto request = snmp::make_discovery_request(
        4000 + static_cast<std::int32_t>(i), 5000);
    const auto responses = sim::handle_udp(router, request.encode(), now, rng);
    check(responses.size() == 1, "v3 REPORT despite no v3 configuration");
    const auto report = snmp::V3Message::decode(responses.front());
    check(report.ok(), "REPORT decodes");
    const auto& usm = report.value().usm;
    check(report.value().scoped_pdu.pdu.type == snmp::PduType::kReport,
          "PDU type is report");
    check(report.value().scoped_pdu.pdu.bindings.at(0).oid ==
              snmp::kOidUsmStatsUnknownEngineIds,
          "usmStats varbind present");
    const auto mac = usm.authoritative_engine_id.mac();
    check(mac.has_value() &&
              mac->bytes() == router.interfaces.front().mac.bytes(),
          ("engine ID carries the FIRST interface's MAC (" +
           mac.value_or(net::MacAddress()).to_string() + ")")
              .c_str());
    check(usm.engine_boots == 148, "engineBoots = 148 (paper Fig. 3 value)");
  }

  std::printf("\n4) Authenticated-looking request with unknown user\n");
  {
    auto request = snmp::make_discovery_request(6000, 6001);
    request.usm.authoritative_engine_id = router.engine_id;
    request.usm.user_name = "noAuthUser";
    const auto responses = sim::handle_udp(router, request.encode(), now, rng);
    check(responses.size() == 1, "rejected but answered");
    const auto report = snmp::V3Message::decode(responses.front());
    check(report.ok() && report.value().scoped_pdu.pdu.bindings.at(0).oid ==
                             snmp::kOidUsmStatsUnknownUserNames,
          "'unknown user name' REPORT — still leaks engine ID/boots/time");
  }

  std::printf("\nAll lab-validation checks passed.\n");
  return 0;
}
