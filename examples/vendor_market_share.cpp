// Vendor market share: per-region router market analysis over a simulated
// census — the paper's §6.4 analyses as a reusable report, including the
// vendor-dominance security metric.
#include <iostream>
#include <map>

#include "core/pipeline.hpp"
#include "util/table.hpp"

using namespace snmpv3fp;

int main() {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  const auto result = core::run_full_pipeline(options);

  const auto rows = core::vendor_share_by_region(result.devices);
  util::TablePrinter table({"Region", "Routers", "Top vendor", "Share",
                            "#Vendors"});
  for (const auto& row : rows) {
    const auto sorted = row.vendor_tally.sorted();
    table.add_row(
        {row.label, util::fmt_count(row.routers),
         sorted.empty() ? "-" : sorted.front().first,
         sorted.empty() ? "-"
                        : util::fmt_percent(
                              static_cast<double>(sorted.front().second) /
                              static_cast<double>(row.routers)),
         std::to_string(row.vendor_tally.raw().size())});
  }
  std::cout << "router market share by region:\n";
  table.print(std::cout);

  const auto rollups = core::rollup_by_as(result.devices);
  util::Ecdf dominance;
  for (const auto& rollup : rollups)
    if (rollup.routers >= 2) dominance.add(rollup.vendor_dominance());
  dominance.finalize();
  if (!dominance.empty()) {
    std::printf("\nvendor dominance across %zu ASes (2+ routers): median %.2f, "
                ">=0.7 in %.0f%% of networks\n",
                dominance.size(), dominance.median(),
                100.0 * (1.0 - dominance.fraction_at_most(0.699)));
    std::cout << "(high dominance = one vendor's vulnerability exposes most "
                 "of the network)\n";
  }
  return 0;
}
