// Internet census: the paper's full methodology end-to-end — two IPv4 and
// two IPv6 campaigns over a simulated Internet, the ten-stage filtering
// pipeline, combined alias resolution, and a vendor market-share report.
//
// Usage: internet_census [tiny|full|router]   (default: tiny)
#include <cstring>
#include <iostream>

#include "core/pipeline.hpp"

using namespace snmpv3fp;

int main(int argc, char** argv) {
  core::PipelineOptions options;
  options.world = topo::WorldConfig::tiny();
  if (argc > 1 && std::strcmp(argv[1], "full") == 0)
    options.world = topo::WorldConfig::full_internet();
  if (argc > 1 && std::strcmp(argv[1], "router") == 0)
    options.world = topo::WorldConfig::router_focus();

  std::cout << "running full pipeline (world seed " << options.world.seed
            << ")...\n";
  const auto result = core::run_full_pipeline(options);

  std::cout << "\n--- scan campaigns ---\n";
  std::printf("IPv4: %zu / %zu responsive (scan1/scan2), %zu joined\n",
              result.v4_campaign.scan1.responsive(),
              result.v4_campaign.scan2.responsive(),
              result.v4_joined.size());
  std::printf("IPv6: %zu / %zu responsive over %zu hitlist targets\n",
              result.v6_campaign.scan1.responsive(),
              result.v6_campaign.scan2.responsive(),
              result.hitlist_v6.size());

  std::cout << "\n--- filtering (IPv4) ---\n";
  for (std::size_t i = 0; i < core::kFilterStageCount; ++i)
    std::printf("  %-28s -%zu\n",
                std::string(core::to_string(static_cast<core::FilterStage>(i)))
                    .c_str(),
                result.v4_report.dropped[i]);
  std::printf("  survivors: %zu of %zu\n", result.v4_report.output,
              result.v4_report.input);

  std::cout << "\n--- alias resolution ---\n";
  const auto breakdown = core::breakdown_by_stack(result.resolution);
  std::printf("alias sets: %zu (non-singleton %zu, %.1f IPs each)\n",
              result.resolution.sets.size(),
              result.resolution.non_singleton_count(),
              result.resolution.mean_ips_per_non_singleton());
  std::printf("v4-only %zu | v6-only %zu | dual-stack %zu\n",
              breakdown.v4_only_sets, breakdown.v6_only_sets,
              breakdown.dual_sets);

  std::cout << "\n--- vendor market share (all devices) ---\n";
  const auto popularity =
      core::vendor_popularity(result.devices, /*routers_only=*/false);
  std::size_t total = 0;
  for (const auto& entry : popularity) total += entry.total();
  for (std::size_t i = 0; i < popularity.size() && i < 8; ++i)
    std::printf("  %-12s %6zu devices (%.1f%%)\n", popularity[i].vendor.c_str(),
                popularity[i].total(),
                100.0 * static_cast<double>(popularity[i].total()) /
                    static_cast<double>(total));

  std::printf("\nrouters among the de-aliased devices: %zu\n",
              result.router_device_count());
  return 0;
}
