#!/usr/bin/env bash
# Repo verification driver:
#   1. Tier-1: configure + build + full ctest suite in build/.
#   2. Focused race check: TSan build in build-tsan/ running the tests that
#      exercise the parallel execution and observability layers
#      (test_parallel, test_obs, test_telemetry) plus test_worlds — the
#      procedural-vs-materialized equivalence suite drives sharded
#      spec-mode campaigns over the lazy per-fabric device cache, the
#      newest cross-thread surface.
#   3. Focused memory/UB check: ASan+UBSan build in build-asan/ running the
#      hostile-input corpus plus the decode-path suites (test_hostile,
#      test_asn1, test_snmp_message, test_checkpoint, test_store,
#      test_wire) — >=10k corrupted payloads must decode-reject with zero
#      memory errors or UB; the store suites re-run the codec mutation
#      corpus and the spill/restore paths under the sanitizers; the wire
#      suites re-run the fast-parser differential fuzz (fast-accept must
#      imply full-accept with equal fields, throw-free).
#   4. Bench-artifact schema checks: bench_store --quick and
#      bench_wire --quick must emit BENCH_*.json files that pass their own
#      schema validation (the binaries exit non-zero on drift). bench_wire
#      additionally fails when any fast-path op allocates or when the fast
#      parser rejects a payload of the clean REPORT corpus (a fallback on
#      clean census traffic means its accept set regressed). bench_obs
#      --quick --gate checks the telemetry layer: the disabled hot path
#      must cost ~nothing and never allocate, the trace/status/flight/
#      timeline JSON artifacts must hold their schemas, and an armed
#      campaign must be bit-identical to an unarmed one.
#   5. Flat-memory gate: bench_world --gate sweeps procedural census
#      worlds of growing address count and fails when the RSS delta of
#      the largest sweep exceeds 2x the smallest's (the O(responders)
#      claim), or when BENCH_world.json drifts from its schema. Under
#      --quick-bench the sweep sizes shrink (1M/4M instead of 1M/134M).
#   6. Parallel-scaling gate: bench_micro_parallel --gate on the full
#      world must show the columnar filter >= 4x the recorded pre-columnar
#      single-thread baseline and no stage speedup regressing below 70% of
#      bench/baselines/BENCH_parallel_before.json (the scan 8-thread >= 3x
#      gate additionally needs >= 8 hardware threads and self-skips below
#      that). Skipped under --quick-bench, which swaps in the fast
#      schema-only run.
#   7. Real-socket gates: the test_net_engine loopback self-test (the
#      pipeline through actual kernel sockets must be bit-identical to the
#      sim-fabric run) and bench_net --gate (batched sendmmsg+GSO send
#      >= 2x the per-datagram loop at batch 64, zero allocations per
#      probe; ring drain >= 2x the recvmmsg drain with zero allocations
#      per frame when CAP_NET_RAW grants rings; BENCH_net.json schema).
#      Both print SKIP and pass when the sandbox denies sockets —
#      visible, never silent.
#   8. Ring-receive suite: test_packet_ring — the link-parser hostile
#      corpus and EINTR regression tests always run; the live AF_PACKET
#      suites (ring-vs-socket byte equality, fanout steering, pipeline
#      bit-identity ring on/off across thread counts) GTEST_SKIP with a
#      visible "SKIP (no CAP_NET_RAW)" line on unprivileged boxes.
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan] [--quick-bench]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TSAN=1
RUN_ASAN=1
QUICK_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    --quick-bench) QUICK_BENCH=1 ;;
    *) echo "usage: scripts/check.sh [--no-tsan] [--no-asan] [--quick-bench]" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: build + full test suite"
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "==> TSan: focused parallel/observability/columnar race check"
  cmake -B build-tsan -S . -DSNMPFP_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" \
      --target test_parallel test_obs test_telemetry test_columnar test_worlds
  # Only the focused binaries are built; select their gtest suites by
  # name (unbuilt targets register _NOT_BUILT placeholders ctest must skip).
  # The columnar suites drive the overlapped join+filter stages and the
  # radix alias grouping at 8 threads — the paths with real cross-thread
  # queue handoffs. The worlds suites run the procedural-vs-materialized
  # pipeline equivalence and the spec-mode kill/resume at 8 threads over
  # the per-fabric lazy device caches.
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
      -R "^(ParallelFor|ParallelMap|ParallelDeterminism|Metrics|Json|Log|Trace|ObsContract|EngineDictionaryTest|TelemetryContract|Timeline|Status|TraceExport|Flight|Report|ColumnarBlockTest|ColumnarCursorTest|ColumnarFilterTest|ColumnarAliasTest|ColumnarPipelineTest|TargetGenerator|ProceduralWorld|SpecModeCampaign|ScenarioLayers)\.")
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "==> ASan+UBSan: hostile-input / decode-path memory check"
  # SNMPFP_SANITIZE=address enables -fsanitize=address,undefined (see the
  # top-level CMakeLists), so one build covers both sanitizers.
  cmake -B build-asan -S . -DSNMPFP_SANITIZE=address
  cmake --build build-asan -j "$JOBS" \
      --target test_hostile test_asn1 test_snmp_message test_checkpoint \
               test_store test_wire
  (cd build-asan && ctest --output-on-failure -j "$JOBS" \
      -R "^(HostileInput|HostileFabric|Ber|BerMalformed|V3Message|V2cMessage|DiscoveryRequest|DiscoveryReport|PduType|PeekVersion|CheckpointCodec|CheckpointCampaignTest|CheckpointPipeline|Pacer|RngState|StoreCodec|RecordStoreTest|StoreCampaignTest|StoreFilterStream|StorePipelineTest|ScanResultAccessors|WireTemplate|WireFastParse|WireReportWriter|WireTransport|WireCampaign)\.")
fi

echo "==> bench-artifact schema check (bench_store --quick)"
(cd build/bench && ./bench_store --quick >/dev/null)

echo "==> wire fast-path check (bench_wire --quick: schema, zero-alloc, no clean-corpus fallback)"
(cd build/bench && ./bench_wire --quick >/dev/null)

echo "==> telemetry gate (bench_obs --quick --gate: zero-overhead off, artifact schemas, bit-identity)"
(cd build/bench && ./bench_obs --quick --gate >/dev/null)

if [[ "$QUICK_BENCH" == 1 ]]; then
  echo "==> flat-memory gate: quick sweeps (bench_world --quick --gate)"
  (cd build/bench && ./bench_world --quick --gate >/dev/null)
  echo "==> parallel-scaling gate: quick schema-only run (--quick-bench)"
  ./build/bench/bench_micro_parallel --quick --gate >/dev/null
else
  echo "==> flat-memory gate (bench_world --gate: 1M -> 134M census sweeps)"
  (cd build/bench && ./bench_world --gate >/dev/null)
  echo "==> parallel-scaling gate (bench_micro_parallel --gate, full world)"
  # Run from the repo root so the default --baseline path resolves.
  ./build/bench/bench_micro_parallel --gate >/dev/null
fi

echo "==> real-socket loopback self-test (test_net_engine: pipeline bit-identity over kernel sockets)"
# The suite GTEST_SKIPs each socket test individually when the sandbox
# denies sockets; surface those skip lines instead of hiding them, but
# still fail on any real failure.
NET_TEST_OUT="$(cd build && ./tests/test_net_engine 2>&1)" || {
  echo "$NET_TEST_OUT" | tail -30; exit 1; }
echo "$NET_TEST_OUT" | grep -E "^\[  SKIPPED|sockets unavailable" || true
echo "$NET_TEST_OUT" | tail -1

echo "==> batched-I/O gate (bench_net --quick --gate: sendmmsg+GSO >= 2x per-datagram, ring rx >= 2x recvmmsg, zero allocs on both hot paths)"
# bench_net prints its own SKIP line and exits 0 when sockets are denied;
# without CAP_NET_RAW the rx ring gate self-skips the same way.
(cd build/bench && ./bench_net --quick --gate | grep -E "SKIP|GATE" || true)
# Propagate the gate verdict (grep above swallows the status).
(cd build/bench && ./bench_net --quick --gate >/dev/null)

echo "==> ring-receive suite (test_packet_ring: parser corpus, EINTR regressions, live AF_PACKET rings)"
# The AF_PACKET suites GTEST_SKIP individually without CAP_NET_RAW;
# surface those skip lines instead of hiding them, fail on any failure.
RING_TEST_OUT="$(cd build && ./tests/test_packet_ring 2>&1)" || {
  echo "$RING_TEST_OUT" | tail -30; exit 1; }
echo "$RING_TEST_OUT" | grep -E "^\[  SKIPPED|SKIP \(no CAP_NET_RAW\)" || true
echo "$RING_TEST_OUT" | tail -1

echo "==> all checks passed"
